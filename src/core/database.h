// The public facade: a Doppel database instance.
//
// Transactions are submitted asynchronously: Submit hands the transaction to one of the
// per-worker MPSC inboxes (round-robin) and immediately returns a TxnHandle — a
// lightweight future that can be waited on (Wait/TryGet) or given a completion callback
// (OnComplete, invoked on the committing worker's thread). SubmitBatch amortises cursor
// traffic across a whole batch, and TrySubmit exposes backpressure: when every inbox is
// full it returns SubmitStatus::kQueueFull instead of queueing unboundedly, so open-loop
// clients see overload instead of hiding it in memory.
//
//   doppel::Options opts;
//   opts.protocol = doppel::Protocol::kDoppel;
//   doppel::Database db(opts);
//   db.store().LoadInt(doppel::Key::FromU64(1), 0);
//   db.Start();
//
//   // Asynchronous: pipeline many transactions, then wait.
//   std::vector<doppel::TxnHandle> handles;
//   for (int i = 0; i < 1000; ++i) {
//     handles.push_back(db.Submit([](doppel::Txn& txn) {
//       txn.Add(doppel::Key::FromU64(1), 1);
//     }));
//   }
//   for (auto& h : handles) h.Wait();
//
//   // Synchronous convenience (Submit + Wait):
//   db.Execute([](doppel::Txn& txn) { txn.Add(doppel::Key::FromU64(1), 1); });
//   db.Stop();  // drains in-flight submissions before joining workers
//
// See examples/quickstart.cpp and examples/async_pipeline.cpp. Benchmarks instead attach
// a per-worker TxnSource: each worker generates transactions as if it were a client and
// executes them closed-loop (§8.1); the open-loop driver (src/workload/driver.h) uses
// Submit from external threads at a paced offered load.
#ifndef DOPPEL_SRC_CORE_DATABASE_H_
#define DOPPEL_SRC_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/core/coordinator.h"
#include "src/core/doppel_engine.h"
#include "src/core/inbox.h"
#include "src/core/options.h"
#include "src/core/runner.h"
#include "src/persist/wal.h"
#include "src/store/epoch.h"
#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {

// Per-worker transaction generator (closed-loop client). Next() is called on the worker's
// own thread; it should fill args.tag and may use w.rng.
class TxnSource {
 public:
  virtual ~TxnSource() = default;
  virtual TxnRequest Next(Worker& w) = 0;
};

using SourceFactory = std::function<std::unique_ptr<TxnSource>(int worker_id)>;

// Future for one submitted transaction. Cheap to copy (one shared_ptr); thread-safe.
class TxnHandle {
 public:
  TxnHandle() = default;

  bool valid() const { return ticket_ != nullptr; }
  // True once the transaction reached a terminal state (committed or user-aborted).
  bool done() const;
  // Blocks until terminal (parks on an atomic wait, no spinning).
  TxnResult Wait() const;
  // Non-blocking: fills *out and returns true iff already terminal.
  bool TryGet(TxnResult* out) const;
  // Registers `cb` to run exactly once with the terminal result. If the transaction is
  // still in flight the callback runs on the worker thread that finishes it (it must not
  // block); if it already finished, `cb` runs inline on the calling thread. At most one
  // callback per handle.
  void OnComplete(std::function<void(const TxnResult&)> cb);

 private:
  friend class Database;
  explicit TxnHandle(std::shared_ptr<SubmitTicket> t) : ticket_(std::move(t)) {}

  std::shared_ptr<SubmitTicket> ticket_;
};

enum class SubmitStatus {
  kOk = 0,
  kQueueFull,  // every worker inbox is at capacity; retry later (backpressure)
  kStopped,    // Stop() has begun; no new submissions are accepted
  kReadOnly,   // permanent WAL failure: only read_only submissions are accepted
};

// Snapshot of the durability state (see Database::durability_health). `op` names the
// syscall whose permanent failure tripped the latch (static string, never null).
struct DurabilityHealth {
  bool degraded = false;
  int error = 0;  // errno of the first permanent failure (0 while healthy)
  const char* op = "";
};

class Database {
 public:
  explicit Database(Options opts);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Options& options() const { return opts_; }
  Store& store() { return store_; }
  const Store& store() const { return store_; }
  Engine& engine() { return *engine_; }
  // Non-null iff options().protocol == kDoppel.
  DoppelEngine* doppel() { return doppel_; }
  const Coordinator* coordinator() const { return coordinator_.get(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Manual data labeling (§5.5); Doppel only. Call before Start.
  void MarkSplitManually(const Key& key, OpCode op,
                         std::size_t topk_k = TopKSet::kDefaultK);

  // Spawns worker threads (and, for Doppel, the coordinator). `factory`, if provided,
  // creates one TxnSource per worker for closed-loop generation.
  //
  // When Options::wal_dir is set, Start first runs recovery: the directory's latest
  // checkpoint is loaded, live log segments are replayed in commit-TID order (work
  // partitioned by key stripe across Options::recovery_threads), ordered-index
  // partitions are rebuilt, and every worker's TID clock is seeded past the maximum
  // recovered TID — only then does logging resume on a fresh segment and do workers
  // spawn. Call pre-population loaders before Start: recovery overwrites any record the
  // durable state knows about, so reloading the same initial data is harmless.
  void Start(SourceFactory factory = nullptr);
  // Stops accepting submissions, drains every inbox and in-flight handle (stashed
  // transactions are replayed in a final joined phase), then joins all threads.
  // Idempotent.
  void Stop();
  bool started() const { return started_; }

  // ---- Asynchronous submission (thread-safe; requires Start() first) ----
  // Places `req` on a worker inbox (round-robin, with failover to the other inboxes) and
  // returns a handle. `req.args.submit_ns` is stamped at acceptance so reported latency
  // includes queueing delay; `req.on_complete`, if set, fires on the committing worker.
  // Blocks only when every inbox is full. If Stop() begins while blocked (or has already
  // begun), returns a handle that reports committed == false.
  TxnHandle Submit(TxnRequest req);
  // std::function convenience body (heap-allocates one ticket, like Execute always did).
  TxnHandle Submit(std::function<void(Txn&)> fn);
  // Non-blocking variant: kQueueFull leaves *handle invalid and the request unqueued.
  SubmitStatus TrySubmit(const TxnRequest& req, TxnHandle* handle);
  // Submits a batch with one cursor reservation: request i lands on inbox
  // (start + i) % num_workers, preserving submission order within each inbox. Blocks
  // until all requests are accepted; returns one handle per request, in order.
  std::vector<TxnHandle> SubmitBatch(std::span<const TxnRequest> reqs);

  // Synchronous wrapper: Submit(fn).Wait(). Blocks until the transaction commits
  // (internally retrying conflicts and stashes) or user-aborts.
  TxnResult Execute(std::function<void(Txn&)> fn);

  // ---- Metrics ----
  // Racy sum of per-worker commit counters; safe to call while running (Fig. 10 series).
  std::uint64_t SampleTotalCommits() const;
  // Racy count of accepted-but-unfinished external submissions.
  std::uint64_t InflightSubmissions() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t committed = 0;
    std::uint64_t committed_split_phase = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t stash_events = 0;
    std::uint64_t user_aborts = 0;
    std::uint64_t type_mismatch_aborts = 0;
    std::uint64_t durability_aborts = 0;  // terminated by the degraded-mode gate
    std::uint64_t committed_by_tag[kNumTags] = {};
    LatencyHistogram latency_by_tag[kNumTags];
  };
  // Aggregated per-worker metrics; call after Stop() for exact values.
  Stats CollectStats() const;

  // Doppel introspection: split records in the most recent plan (0 otherwise).
  std::size_t LastPlanSize() const { return doppel_ ? doppel_->LastPlanSize() : 0; }

  // Epoch reclaimer introspection; nullptr when reclamation is off (Options::reclaim
  // disabled, or the Atomic protocol).
  const EpochReclaimer* reclaimer() const { return reclaimer_.get(); }

  // Non-null when Options::wal_dir is set.
  WriteAheadLog* wal() { return wal_.get(); }
  const WriteAheadLog* wal() const { return wal_.get(); }

  // True after a permanent WAL failure: the database is in read-only degraded mode.
  // One-way for the process lifetime. Reads keep committing and replicas keep tailing
  // whatever the log holds; writes bounce at submission (SubmitStatus::kReadOnly) and
  // in-flight writers terminate with TxnAbort::kDurabilityLost.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  // Degraded flag plus the first permanent failure's errno and operation name.
  DurabilityHealth durability_health() const;

  // What Start()'s recovery pass restored (all-zero when no wal_dir / recovery ran).
  const RecoveryResult& recovery() const { return recovery_; }

  // Asks the Doppel coordinator to take a consistent checkpoint at its next quiesce
  // barrier (in addition to any Options::checkpoint_interval_us cadence). Returns false
  // when there is nothing to checkpoint with (no WAL, or a protocol without the
  // coordinator's quiesce barriers — OCC/2PL recover by full log replay instead).
  bool RequestCheckpoint();

 private:
  void WorkerMain(Worker& w, TxnSource* source);
  // Pops up to Options::worker_batch submissions from the worker's inbox in one cursor
  // pass and runs them back to back; returns how many ran.
  std::size_t TryRunSubmitted(Worker& w);
  // Stamps submit_ns, charges the drain counter, and pushes onto the inbox at
  // `start_inbox` (trying the others too when `failover` is set — batch submission
  // disables failover to keep per-inbox FIFO order under backpressure). On
  // kQueueFull/kStopped nothing is queued or charged.
  SubmitStatus TrySubmitPending(PendingTxn&& pt, std::uint32_t start_inbox, bool failover,
                                TxnHandle* handle);
  TxnHandle SubmitPendingBlocking(PendingTxn&& pt, std::uint32_t start_inbox,
                                  bool failover);

  // Hard cap on Options::worker_batch (bounds the TryRunSubmitted stack array).
  static constexpr int kMaxWorkerBatch = 64;

  Options opts_;
  int worker_batch_ = 16;  // opts_.worker_batch clamped to [1, kMaxWorkerBatch]
  Store store_;
  std::unique_ptr<EpochReclaimer> reclaimer_;  // null: reclamation off (Atomic, opt-out)
  std::unique_ptr<WriteAheadLog> wal_;
  RecoveryResult recovery_;
  std::atomic<bool> stop_coord_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> draining_{false};  // Stop() in progress: coordinator hurries phases
  std::unique_ptr<Engine> engine_;
  DoppelEngine* doppel_ = nullptr;  // borrowed view of engine_ when protocol is Doppel
  RunnerConfig runner_cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<TxnSource>> sources_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopped_ = false;

  // ---- Submission path ----
  std::vector<std::unique_ptr<SubmitInbox>> inboxes_;  // one per worker
  std::atomic<std::uint32_t> next_inbox_{0};           // round-robin placement cursor
  std::atomic<std::uint64_t> inflight_{0};             // accepted, not yet terminal
  std::atomic<bool> accepting_{false};                 // false before Start / after Stop
  // One-way read-only latch, set by the WAL's durability-lost callback (permanent I/O
  // failure). Release store so the WAL failure details (failed_errno/failed_op) are
  // visible to anyone who acquires the flag.
  std::atomic<bool> degraded_{false};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_DATABASE_H_
