#include "src/core/coordinator.h"

#include <chrono>
#include <thread>

#include "src/common/timing.h"

namespace doppel {
namespace {

constexpr std::uint64_t kPollChunkNs = 200 * 1000;  // 200us stop/feedback polling

// Joined-phase sleeps poll more coarsely: the only signal they react to is stop,
// so the 200us cadence buys nothing — and on machines with as many workers as
// cores every coordinator wakeup preempts a worker mid-transaction (measurable
// on the 1-vCPU perf class). Split phases keep the fine cadence because drain
// and the stash-pressure hurry signal live there.
constexpr std::uint64_t kJoinedPollChunkNs = 1000 * 1000;  // 1ms stop polling

}  // namespace

void Coordinator::SleepJoined(std::uint64_t ns) const {
  // No drain check here: a draining database *wants* to sit in the joined phase (that is
  // where workers retire stashed transactions), so only stop cuts this sleep short.
  const std::uint64_t deadline = NowNanos() + ns;
  while (!stop_coord_.load(std::memory_order_relaxed)) {
    const std::uint64_t now = NowNanos();
    if (now >= deadline) {
      return;
    }
    const std::uint64_t chunk = std::min(deadline - now, kJoinedPollChunkNs);
    std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
  }
}

void Coordinator::SleepSplit(std::uint64_t ns) const {
  const std::uint64_t deadline = NowNanos() + ns;
  // Relaxed flag polls: reacting a chunk late is fine, and the barrier protocol (not
  // these loads) provides all ordering for the transition that follows.
  while (!stop_coord_.load(std::memory_order_relaxed) &&
         !drain_.load(std::memory_order_relaxed)) {
    const std::uint64_t now = NowNanos();
    if (now >= deadline || engine_.ShouldHurrySplitEnd()) {
      return;
    }
    const std::uint64_t chunk = std::min(deadline - now, kPollChunkNs);
    std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
  }
}

void Coordinator::Run() {
  PhaseController& ctrl = engine_.controller();
  const std::uint64_t phase_ns = opts_.phase_us * 1000;

  // Relaxed stop/drain polls throughout this loop: a transition observed one
  // iteration late is harmless, and the phase barriers order everything that matters.
  // Stage-time counters are stats (racy readers by contract).
  while (!stop_coord_.load(std::memory_order_relaxed)) {
    std::uint64_t t0 = NowNanos();
    SleepJoined(phase_ns);
    std::uint64_t t1 = NowNanos();
    joined_ns_.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (stop_coord_.load(std::memory_order_relaxed)) {
      break;
    }
    // "If, in a joined phase, no records appear contended ... the coordinator delays the
    // next split phase." While draining for Stop, never start one: a new split phase
    // could stash the very submissions Stop is waiting to retire.
    if (!engine_.HasSplitCandidates() || drain_.load(std::memory_order_relaxed)) {
      // Insert-heavy adaptive tables may need their boundaries narrowed even though
      // nothing qualifies for splitting (bulk inserts rarely conflict — they just
      // serialize on one stripe), and a due checkpoint needs a consistency point even
      // on an uncontended system. Both require every worker quiesced, so run a
      // tune/checkpoint-only joined -> joined barrier: workers ack and resume without
      // any slice or stash work.
      if (!drain_.load(std::memory_order_relaxed) &&
          !stop_coord_.load(std::memory_order_relaxed) &&
          (engine_.IndexTunePending() || engine_.CheckpointDue() ||
           engine_.ReplicationCutDue())) {
        ctrl.BeginTransition(Phase::kJoined);
        engine_.WaitForWorkerAcks();
        engine_.BarrierTuneIndexes();
        engine_.BarrierEmitReplicationCut();
        engine_.BarrierMaybeCheckpoint();
        ctrl.Release();
        // Stats counter; racy readers by contract.
        tune_barriers_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    // JOINED -> SPLIT.
    ctrl.BeginTransition(Phase::kSplit);
    engine_.WaitForWorkerAcks();
    engine_.BarrierBuildPlan();
    ctrl.Release();
    std::uint64_t t2 = NowNanos();
    // Stage-time stats counter; racy readers by contract.
    to_split_barrier_ns_.fetch_add(t2 - t1, std::memory_order_relaxed);

    SleepSplit(phase_ns);
    std::uint64_t t3 = NowNanos();
    // Stage-time stats counter; racy readers by contract.
    split_ns_.fetch_add(t3 - t2, std::memory_order_relaxed);

    // SPLIT -> JOINED. Runs even when stopping: every slice must reconcile before
    // shutdown so committed effects reach the global store.
    ctrl.BeginTransition(Phase::kJoined);
    engine_.WaitForWorkerAcks();
    engine_.BarrierAfterReconcile();
    // Workers are still quiesced and every slice is merged: the joined-phase barrier is
    // a free transaction-consistent point, so a due checkpoint snapshots here. Skipped
    // while draining — Stop is waiting on in-flight submissions and a snapshot would
    // only stretch that wait.
    if (!drain_.load(std::memory_order_relaxed)) {
      engine_.BarrierEmitReplicationCut();
      engine_.BarrierMaybeCheckpoint();
    }
    ctrl.Release();
    // Stage-time / cycle stats counters; racy readers by contract.
    to_joined_barrier_ns_.fetch_add(NowNanos() - t3, std::memory_order_relaxed);
    cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  stop_workers_.store(true, std::memory_order_release);
}

}  // namespace doppel
