// Plain-text table + CSV reporting for the benchmark binaries. Each bench prints the
// same rows/series as the corresponding paper table or figure.
#ifndef DOPPEL_SRC_WORKLOAD_REPORT_H_
#define DOPPEL_SRC_WORKLOAD_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace doppel {

// Column-aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;
  // Machine-readable companion output (one block per table, prefixed "csv,").
  void PrintCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string FormatCount(double v);        // 12.3M, 456K, ...
std::string FormatDouble(double v, int precision);
std::string FormatMicros(double nanos);   // nanoseconds -> "12.3" (microseconds)
std::string FormatBytes(double v);        // 12.3MB, 456KB, ...

class LatencyHistogram;
struct RunMetrics;

// One-line durability summary for a run ("wal: 1.2M txns logged, 640 flushes, 18.4MB,
// 3 segments, 2 checkpoints"); empty string when the run had no WAL, so benches can
// print it unconditionally after every row.
std::string WalSummary(const RunMetrics& m);

// Formats mean/p50/p90/p99/max (microseconds) for a latency table row. Checks that every
// recorded sample is non-zero: a zero latency means a transaction was executed without
// its submit_ns stamp, i.e. queueing delay silently dropped out of the numbers.
std::vector<std::string> LatencyPercentileCells(const LatencyHistogram& h);

// Matching headers for LatencyPercentileCells.
std::vector<std::string> LatencyPercentileHeaders();

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_REPORT_H_
