// RUBiS workload mixes (§8.8).
//
// RUBiS-B: the RUBiS "Bidding" mix — 15% read-write / 85% read-only transactions,
// uniform item popularity. RUBiS-C: 50% StoreBid on items chosen with a Zipfian
// distribution, the remaining transactions in correspondingly reduced RUBiS-B
// proportions ("approximates very popular auctions nearing their close").
#ifndef DOPPEL_SRC_RUBIS_WORKLOAD_H_
#define DOPPEL_SRC_RUBIS_WORKLOAD_H_

#include <memory>

#include "src/common/zipf.h"
#include "src/core/database.h"
#include "src/rubis/data.h"

namespace doppel {
namespace rubis {

enum class Mix {
  kBidding,     // RUBiS-B
  kContended,   // RUBiS-C
};

struct WorkloadConfig {
  Config data;
  Mix mix = Mix::kBidding;
  double alpha = 1.8;            // RUBiS-C item skew
  bool plain_store_bid = false;  // ablation: use the Fig. 6 StoreBid form
};

class RubisSource : public TxnSource {
 public:
  RubisSource(const WorkloadConfig& cfg, const ZipfianGenerator* zipf, int worker_id);

  TxnRequest Next(Worker& w) override;

 private:
  std::uint64_t NextRowId() { return ShardedId(worker_id_, next_local_id_++); }
  std::uint64_t PickItem(Worker& w);

  const WorkloadConfig cfg_;
  const ZipfianGenerator* zipf_;  // used by RUBiS-C StoreBid item choice
  const int worker_id_;
  std::uint64_t next_local_id_ = 1;
};

// `zipf` must be built over cfg.data.num_items and outlive the sources (may be null for
// RUBiS-B).
SourceFactory MakeRubisFactory(const WorkloadConfig& cfg, const ZipfianGenerator* zipf);

}  // namespace rubis
}  // namespace doppel

#endif  // DOPPEL_SRC_RUBIS_WORKLOAD_H_
