// Silo-style optimistic concurrency control (the paper's OCC baseline and Doppel's
// joined-phase protocol; Fig. 2).
#ifndef DOPPEL_SRC_TXN_OCC_ENGINE_H_
#define DOPPEL_SRC_TXN_OCC_ENGINE_H_

#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {

class OccEngine : public Engine {
 public:
  explicit OccEngine(Store& store) : store_(store) {}

  const char* name() const override { return "occ"; }

  Record* Route(Worker& w, const Key& key, RecordType type, std::size_t topk_k) override;
  Record* RouteDelete(Worker& w, const Key& key) override;
  void Read(Worker& w, Txn& txn, Record* r, ReadResult* out) override;
  void Write(Worker& w, Txn& txn, PendingWrite&& pw) override;
  std::size_t Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                   std::uint64_t hi, std::size_t limit, ScanFn fn) override;
  TxnStatus Commit(Worker& w, Txn& txn) override;
  void Abort(Worker& w, Txn& txn) override;

 protected:
  // Shared by DoppelEngine: plain-OCC read / write-buffering / commit on the read and
  // (non-split) write sets of `txn`.
  void OccRead(Txn& txn, Record* r, ReadResult* out);
  void OccBufferWrite(Txn& txn, PendingWrite&& pw);
  TxnStatus OccCommit(Worker& w, Txn& txn);
  // Scan body shared with DoppelEngine. With `stash_on_split` set (Doppel split phases),
  // meeting a split record in the window dooms the transaction for stashing and the scan
  // stops (§7: split data cannot be read during a split phase).
  std::size_t OccScan(Txn& txn, std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                      std::size_t limit, ScanFn fn, bool stash_on_split);

  Store& store_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_OCC_ENGINE_H_
