// Global phase state (§5.4).
//
// The coordinator publishes a transition by storing a new word into `pending`; workers
// notice between transactions, perform their transition duties (reconcile slices when
// leaving a split phase, drain stashed transactions before entering one), store the word
// into their ack slot, and spin until `released` catches up. The paired release store /
// acquire load on these words is what makes the coordinator's barrier-time writes (split
// marks, the split plan) visible to workers without further synchronization.
#ifndef DOPPEL_SRC_CORE_PHASE_CONTROLLER_H_
#define DOPPEL_SRC_CORE_PHASE_CONTROLLER_H_

#include <atomic>
#include <cstdint>

#include "src/txn/phase.h"

namespace doppel {

class PhaseController {
 public:
  static std::uint64_t Encode(std::uint64_t seq, Phase p) {
    return (seq << 1) | (p == Phase::kSplit ? 1u : 0u);
  }
  static Phase DecodePhase(std::uint64_t word) {
    return (word & 1) != 0 ? Phase::kSplit : Phase::kJoined;
  }
  static std::uint64_t DecodeSeq(std::uint64_t word) { return word >> 1; }

  std::uint64_t pending() const { return pending_.load(std::memory_order_acquire); }
  std::uint64_t released() const { return released_.load(std::memory_order_acquire); }

  // Coordinator: announce the next phase. Must not be called with a transition in flight.
  std::uint64_t BeginTransition(Phase target) {
    const std::uint64_t word = Encode(DecodeSeq(pending()) + 1, target);
    pending_.store(word, std::memory_order_release);
    return word;
  }

  // Coordinator: let acknowledged workers proceed into the new phase.
  void Release() {
    released_.store(pending_.load(std::memory_order_relaxed), std::memory_order_release);
  }

  bool TransitionInFlight() const { return pending() != released(); }

  Phase CurrentReleasedPhase() const { return DecodePhase(released()); }

 private:
  std::atomic<std::uint64_t> pending_{Encode(0, Phase::kJoined)};
  std::atomic<std::uint64_t> released_{Encode(0, Phase::kJoined)};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_PHASE_CONTROLLER_H_
