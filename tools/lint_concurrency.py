#!/usr/bin/env python3
"""Concurrency lint: house rules for locks, escape hatches, and relaxed atomics.

Checked over every .h/.cc under src/ (run as a gating CI step and a ctest):

  A. Every NO_THREAD_SAFETY_ANALYSIS escape hatch must carry a rationale: a
     non-trivial `//` comment on the same line or within the 3 lines above it.
     The thread-safety analysis is the only reviewer of lock discipline that
     scales; a rationale-free escape is an unreviewed hole in the contract.

  B. No naked standard mutex types (std::mutex, std::shared_mutex, ...) outside
     src/common/mutex.h. The wrappers there carry the CAPABILITY annotations;
     a naked standard mutex makes its guarded data invisible to the analysis.

  C. Every memory_order_relaxed use must sit next to an invariant comment: a
     `//` comment on the same line or within the preceding lines (a run of
     consecutive relaxed-using lines is covered by one comment above the run).
     Relaxed atomics are exactly where the compiler and TSan are both blind;
     the invariant that makes the ordering sufficient must be written down.

Exit status 0 when clean; 1 with findings (one per line: path:line: rule: message).
Run with --self-test to check the rules against known-good/known-bad fixtures.
"""

import argparse
import os
import re
import sys

# Rule A: escape hatches need a rationale comment within this many lines above.
RATIONALE_WINDOW = 3
# Rationale / invariant comments shorter than this (after stripping slashes and
# whitespace) are considered trivial ("// ok") and rejected.
MIN_COMMENT_CHARS = 12
# Rule C: how many non-relaxed code lines above a relaxed use we search for a
# comment. Lines that themselves use memory_order_ chain the window upward, so
# one comment covers a whole cluster of relaxed operations.
RELAXED_WINDOW = 5
RELAXED_CHAIN_CAP = 40  # hard cap on the upward walk, chains included

NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex)\b"
)
# The one file allowed to name standard mutex types (it defines the wrappers).
MUTEX_WRAPPER_FILE = os.path.join("src", "common", "mutex.h")
# The macro definition site itself is not an escape-hatch *use*.
ANNOTATIONS_FILE = os.path.join("src", "common", "annotations.h")


def strip_comment(line):
    """Code portion of a line (ignores // comments; no block-comment tracking —
    the codebase uses line comments only)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def comment_text(line):
    """The comment portion of a line, or '' if none."""
    idx = line.find("//")
    return "" if idx < 0 else line[idx:].strip("/ \t\n")


def has_real_comment(line):
    return len(comment_text(line)) >= MIN_COMMENT_CHARS


def check_escape_hatches(relpath, lines):
    """Rule A: NO_THREAD_SAFETY_ANALYSIS must carry an adjacent rationale."""
    findings = []
    if relpath.replace(os.sep, "/") == ANNOTATIONS_FILE.replace(os.sep, "/"):
        return findings
    for i, line in enumerate(lines):
        if "NO_THREAD_SAFETY_ANALYSIS" not in strip_comment(line):
            continue
        covered = has_real_comment(line)
        for j in range(max(0, i - RATIONALE_WINDOW), i):
            covered = covered or has_real_comment(lines[j])
        if not covered:
            findings.append(
                (relpath, i + 1, "escape-hatch",
                 "NO_THREAD_SAFETY_ANALYSIS without a rationale comment within "
                 f"{RATIONALE_WINDOW} lines above"))
    return findings


def check_naked_mutexes(relpath, lines):
    """Rule B: standard mutex types only inside the wrapper header."""
    findings = []
    if relpath.replace(os.sep, "/") == MUTEX_WRAPPER_FILE.replace(os.sep, "/"):
        return findings
    for i, line in enumerate(lines):
        m = NAKED_MUTEX_RE.search(strip_comment(line))
        if m:
            findings.append(
                (relpath, i + 1, "naked-mutex",
                 f"std::{m.group(1)} outside src/common/mutex.h — use the "
                 "annotated doppel::Mutex / doppel::SharedMutex wrappers"))
    return findings


def check_relaxed_comments(relpath, lines):
    """Rule C: memory_order_relaxed needs an adjacent invariant comment."""
    findings = []
    for i, line in enumerate(lines):
        if "memory_order_relaxed" not in strip_comment(line):
            continue
        if has_real_comment(line):
            continue
        budget = RELAXED_WINDOW
        covered = False
        j = i - 1
        walked = 0
        while j >= 0 and budget > 0 and walked < RELAXED_CHAIN_CAP:
            if has_real_comment(lines[j]):
                covered = True
                break
            # A neighbouring atomic op chains the window: one comment heads a
            # cluster of relaxed operations.
            if "memory_order_" in lines[j]:
                budget = RELAXED_WINDOW
            else:
                budget -= 1
            j -= 1
            walked += 1
        if not covered:
            findings.append(
                (relpath, i + 1, "relaxed-no-invariant",
                 "memory_order_relaxed without an adjacent fence/invariant "
                 "comment (same line or a comment heading the cluster)"))
    return findings


CHECKS = [check_escape_hatches, check_naked_mutexes, check_relaxed_comments]


def lint_text(relpath, text):
    lines = text.splitlines()
    findings = []
    for check in CHECKS:
        findings.extend(check(relpath, lines))
    return findings


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            relpath = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as f:
                findings.extend(lint_text(relpath, f.read()))
    return findings


# ---- Self-test fixtures -----------------------------------------------------
# Each entry: (name, source text, set of rules that MUST flag it — empty set
# means the snippet must pass clean). Known-bad snippets guard against the lint
# rotting into a no-op; known-good ones against it rejecting the house style.

FIXTURES = [
    ("bad_escape_no_rationale", """\
void ReleaseAll(Txn& txn) NO_THREAD_SAFETY_ANALYSIS;
""", {"escape-hatch"}),
    ("bad_escape_trivial_comment", """\
// ok
void ReleaseAll(Txn& txn) NO_THREAD_SAFETY_ANALYSIS;
""", {"escape-hatch"}),
    ("good_escape_with_rationale", """\
// Lock set is held across function boundaries for the transaction's duration;
// the analysis is function-local and cannot track it.
void ReleaseAll(Txn& txn) NO_THREAD_SAFETY_ANALYSIS;
""", set()),
    ("bad_naked_mutex", """\
#include <mutex>
struct S {
  std::mutex mu;
};
""", {"naked-mutex"}),
    ("bad_naked_shared_mutex_in_template_arg", """\
#include <shared_mutex>
struct S {
  std::shared_lock<std::shared_mutex> lock;
};
""", {"naked-mutex"}),
    ("good_wrapped_mutex", """\
#include "src/common/mutex.h"
struct S {
  doppel::Mutex mu;
  doppel::SharedMutex publish_mu;
};
""", set()),
    ("good_mutex_mention_in_comment", """\
// The publish lock is a SharedMutex (was std::shared_mutex before wrapping).
int x;
""", set()),
    ("bad_relaxed_no_comment", """\
std::uint64_t Count() {
  return n_.load(std::memory_order_relaxed);
}
""", {"relaxed-no-invariant"}),
    ("good_relaxed_same_line", """\
std::uint64_t Count() {
  return n_.load(std::memory_order_relaxed);  // racy stats peek; no ordering needed
}
""", set()),
    ("good_relaxed_cluster_comment", """\
// Monotonic stat counters: readers tolerate racy values, no publication rides
// on them, so relaxed is sufficient for the whole cluster.
a_.fetch_add(1, std::memory_order_relaxed);
b_.fetch_add(1, std::memory_order_relaxed);
c_.store(0, std::memory_order_relaxed);
""", set()),
    ("bad_relaxed_comment_too_far", """\
// A comment that is much too far above the relaxed use to plausibly cover it.
int a;
int b;
int c;
int d;
int e;
int f;
n_.store(1, std::memory_order_relaxed);
""", {"relaxed-no-invariant"}),
]


def self_test():
    failures = []
    for name, text, expected_rules in FIXTURES:
        relpath = os.path.join("src", "fixture", name + ".cc")
        flagged = {rule for (_, _, rule, _) in lint_text(relpath, text)}
        if expected_rules - flagged:
            failures.append(
                f"{name}: expected rules {sorted(expected_rules - flagged)} did not fire")
        if not expected_rules and flagged:
            failures.append(f"{name}: expected clean, got {sorted(flagged)}")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 1
    print(f"self-test OK ({len(FIXTURES)} fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (containing src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule checkers against embedded fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for relpath, lineno, rule, msg in findings:
        print(f"{relpath}:{lineno}: {rule}: {msg}")
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)")
        return 1
    print("lint_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
