// Per-table ordered key index with version-stamped partitions (Silo-style phantom
// protection for range scans).
//
// The store's RecordMap is an unordered hash table; this index layers an ordered view on
// top of it. Records enter the index when they first become logically present (the
// absent -> present transition happens under the record's OCC lock bit, so the engine
// applying the write inserts race-free), and leave it when a committed delete makes them
// absent again (the present -> absent transition holds the same lock, and Remove bumps
// the partition version exactly like a structural insert does — a scan that traversed
// the range revalidates and aborts, so deletions can no more slip under a scan than
// phantom inserts can).
//
// Each table's key space ([lo] within the Key.hi namespace) is striped into contiguous
// ranges. A partition is the phantom-protection unit: it carries a version counter bumped
// by every insert into its range. A transactional scan records the (partition, version)
// pairs it traversed; OCC commit validation rechecks them alongside the read set, so an
// insert into a scanned range between scan and commit aborts the scanner (no phantoms).
// 2PL instead takes the partition's reader/writer lock for the transaction's duration.
//
// Partition boundaries are per table: a PartitionConfig fixes the stripe count and the
// boundary shift (boundaries at multiples of 2^shift; the last stripe is open-ended) at
// table registration via ConfigureTable. The default (shift 40, 64 stripes) matches the
// repo's composite key layouts: RUBiS shards inserted row ids by worker at bit 40
// (schema.h kShardStride) and puts scan dimensions (category, bucket) in bits >= 40.
// Tables whose keys are dense (all below 2^40) should register a narrower config — or
// set `adaptive`, which lets the Doppel coordinator narrow the boundaries between phases
// when the per-partition insert/conflict telemetry shows one stripe absorbing the load
// (NarrowTable re-bins every key under the table's full partition lock set).
//
// Telemetry: every partition counts structural inserts and scan conflicts (OCC
// scan-validation failures, 2PL partition-lock timeouts). The counters are cumulative
// and relaxed; the Doppel coordinator reads deltas at phase barriers to drive adaptive
// narrowing, and ConflictSampler::RecordScanConflict aggregates the sampled per-worker
// view for the contention classifier.
#ifndef DOPPEL_SRC_STORE_ORDERED_INDEX_H_
#define DOPPEL_SRC_STORE_ORDERED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/key.h"

namespace doppel {

class Record;

// Per-table partition layout, fixed at registration (ConfigureTable) except that
// `adaptive` additionally allows the coordinator to lower `shift` later (NarrowTable).
struct PartitionConfig {
  // Boundaries at multiples of 2^shift; keys mapping past the last stripe clamp into it.
  unsigned shift = 40;
  // Stripe count (also the table's stripe capacity: narrowing changes only the shift).
  std::uint32_t partitions = 64;
  // Allow the Doppel coordinator to narrow boundaries between phases.
  bool adaptive = false;
};

// One version-stamped stripe of a table's ordered key space.
struct IndexPartition {
  // Guards `entries`; held only for O(log n) map operations and bounded range copies.
  // Never acquire a record lock while holding `mu` (writers insert while holding their
  // record's OCC lock bit, so the reverse order would deadlock).
  mutable Spinlock mu;
  // Bumped under `mu` by every structural insert; read without `mu` by OCC validation.
  std::atomic<std::uint64_t> version{0};
  // Ordered by key lo. Values are stable Record pointers: an indexed record is
  // logically present, and the epoch sweeper only reclaims absent (hence unindexed)
  // records, so an entry can never dangle.
  std::map<std::uint64_t, Record*> entries GUARDED_BY(mu);
  // Transaction-duration phantom lock for the 2PL engine (unused by OCC/Doppel).
  RWSpinlock rw;
  // ---- Telemetry (cumulative, relaxed) ----
  // Structural inserts that landed in this stripe.
  std::atomic<std::uint64_t> inserts{0};
  // Structural removals (committed deletes) from this stripe.
  std::atomic<std::uint64_t> removes{0};
  // Scan conflicts charged to this stripe: OCC scan-set validation failures, OCC
  // read-set failures on records reached through a scan, 2PL partition-lock timeouts.
  std::atomic<std::uint64_t> scan_conflicts{0};
};

class OrderedIndex {
 public:
  static constexpr std::size_t kDefaultPartitions = 64;
  static constexpr unsigned kDefaultShift = 40;
  // Open-addressed table directory capacity; far above any workload's table count.
  static constexpr std::size_t kMaxTables = 256;
  // Upper bound on a table's configured stripe count.
  static constexpr std::uint32_t kMaxPartitionsPerTable = 1024;

  struct TableIndex {
    TableIndex(std::uint64_t table_id, const PartitionConfig& cfg)
        : table(table_id),
          adaptive(cfg.adaptive),
          partitions(cfg.partitions == 0 ? 1 : cfg.partitions),
          shift(cfg.shift),
          tune_insert_marks(partitions.size(), 0) {}

    std::uint64_t table;
    const bool adaptive;
    // Fixed size after construction (IndexPartition addresses must stay stable: scan
    // sets and 2PL lock sets hold raw pointers into this vector).
    std::vector<IndexPartition> partitions;
    // Lowered (never raised) by NarrowTable; read per access by scans and inserts.
    std::atomic<unsigned> shift;
    // Highest key lo ever inserted: the narrowing heuristic spreads [0, max_key] over
    // the table's stripes.
    std::atomic<std::uint64_t> max_key{0};
    std::atomic<std::uint64_t> rebins{0};
    // Coordinator-only tuning state: per-partition insert counts and the table conflict
    // count as of the last adaptive-tuning evaluation (deltas, not cumulative).
    std::vector<std::uint64_t> tune_insert_marks;
    std::uint64_t tune_conflict_mark = 0;

    std::size_t PartitionOf(std::uint64_t lo) const {
      return PartitionWithShift(lo, shift.load(std::memory_order_acquire));
    }
    std::size_t PartitionWithShift(std::uint64_t lo, unsigned s) const {
      const std::uint64_t p = s >= 64 ? 0 : lo >> s;
      const std::size_t n = partitions.size();
      return p < n ? static_cast<std::size_t>(p) : n - 1;
    }
  };

  // Aggregate per-table snapshot (observability, tests, tuning decisions).
  struct TableStats {
    unsigned shift = 0;
    std::size_t partitions = 0;
    bool adaptive = false;
    std::uint64_t entries = 0;
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    std::uint64_t scan_conflicts = 0;
    std::uint64_t rebins = 0;
    std::uint64_t max_key = 0;
  };

  OrderedIndex();
  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;
  ~OrderedIndex();

  // Registers `table` with an explicit partition layout. Must run before the table's
  // first insert or scan (typically right before pre-population); re-configuring an
  // existing table is a checked error.
  TableIndex& ConfigureTable(std::uint64_t table, const PartitionConfig& cfg);

  // Checkpoint-recovery variant of ConfigureTable: restores `cfg` as the table's
  // layout, tolerating a table that already exists (the application may have
  // ConfigureTable'd and pre-populated before recovery ran). An existing table keeps
  // its stripe capacity — partition addresses are held raw by scan and lock sets and
  // cannot move — but its boundary shift is narrowed to the checkpointed value when the
  // checkpoint captured a tighter (adaptively tuned) layout, so recovered tables resume
  // from their tuned boundaries instead of re-learning them.
  TableIndex& RestoreTable(std::uint64_t table, const PartitionConfig& cfg);

  // Inserts `key` -> `r`. Idempotent (re-inserting an indexed key is a no-op and does
  // not bump the partition version). The caller must hold whatever lock made the
  // record's absent -> present transition exclusive (the OCC lock bit, or the record's
  // 2PL write lock); this keeps insert-before-record-unlock ordering, which is what
  // makes a committed insert visible to any scan that validates after the writer's
  // commit point.
  void Insert(const Key& key, Record* r);

  // Removes `key` from its partition (a committed delete). Idempotent (removing an
  // unindexed key is a no-op). Same locking contract as Insert: the caller holds the
  // lock that made the record's present -> absent transition exclusive. A successful
  // removal bumps the partition version — the delete-side twin of the phantom-insert
  // guard, so a scan that saw the key aborts at validation.
  void Remove(const Key& key);

  // The table's index, created on demand with the default PartitionConfig. Scans call
  // this (not FindTable) so that even a never-written table gets version-stamped
  // partitions — otherwise an insert racing the first scan of an empty table could slip
  // in unvalidated.
  TableIndex& GetOrCreateTable(std::uint64_t table);

  // Lock-free lookup; nullptr if no record of this table was ever indexed or scanned.
  TableIndex* FindTable(std::uint64_t table) const;

  IndexPartition& PartitionFor(const Key& key) {
    TableIndex& t = GetOrCreateTable(key.hi);
    return t.partitions[t.PartitionOf(key.lo)];
  }

  // Re-bins every key of `t` under boundaries at multiples of 2^new_shift, holding all
  // of the table's partition spinlocks, and bumps every partition version (any scan
  // validating across the re-bin aborts). Returns false (and does nothing) unless
  // new_shift < the current shift. PRECONDITION: no scan of this table may be in flight
  // — the Doppel coordinator guarantees this by narrowing only at phase barriers with
  // every worker quiesced; concurrent *inserts* are safe (Insert re-checks the shift
  // under the partition lock and re-bins itself).
  // Unanalyzable lock set: acquires every partition spinlock of `t` in a loop, which
  // the function-local thread-safety analysis cannot express.
  bool NarrowTable(TableIndex& t, unsigned new_shift) NO_THREAD_SAFETY_ANALYSIS;

  // Calls fn(TableIndex&) for every registered table. Iteration is lock-free and safe
  // against concurrent table creation (newly created tables may or may not be seen).
  template <typename Fn>
  void ForEachTable(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.tag.load(std::memory_order_acquire) != 0) {
        fn(*s.index.load(std::memory_order_relaxed));
      }
    }
  }

  template <typename Fn>
  void ForEachTable(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.tag.load(std::memory_order_acquire) != 0) {
        // tag is published after index (release), so the acquire above orders this.
        fn(const_cast<const TableIndex&>(*s.index.load(std::memory_order_relaxed)));
      }
    }
  }

  TableStats StatsFor(std::uint64_t table) const;

  // Copies the entries of `part` lying in [lo, hi] (inclusive) in ascending key order,
  // up to `max_items` (0 = unbounded), and returns the partition version that the copy
  // is consistent with (read under the same critical section).
  static std::uint64_t SnapshotRange(IndexPartition& part, std::uint64_t lo,
                                     std::uint64_t hi, std::size_t max_items,
                                     std::vector<std::pair<std::uint64_t, Record*>>* out);

  std::size_t size(std::uint64_t table) const;  // entries across partitions (tests)

  // Monotonic count of committed deletes across every table (per-partition `removes`
  // telemetry summed would cost a directory walk; this single counter feeds the epoch
  // sweeper's has-anything-changed hint instead).
  std::uint64_t removes() const { return total_removes_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // 0 = empty; otherwise table id + 1 (so table id 0 is representable).
    std::atomic<std::uint64_t> tag{0};
    std::atomic<TableIndex*> index{nullptr};
  };

  // Creates the table with `cfg`; the caller must have verified it does not exist yet.
  TableIndex& CreateTable(std::uint64_t table, const PartitionConfig& cfg);

  std::vector<Slot> slots_;
  Spinlock create_mu_;  // serializes table creation (rare: once per table)
  // Cumulative gauge (see removes()); racy stats reads by contract — relaxed.
  std::atomic<std::uint64_t> total_removes_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_ORDERED_INDEX_H_
