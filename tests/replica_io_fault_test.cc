// Replica tailer read-fault tolerance: transient pread errors (EINTR, intermittent
// EIO) must be absorbed with backoff — the tailer resumes from the same position, so
// cut alignment is preserved and the replica still converges to the primary's exact
// final state, with the retries visible in ReplicaProgress.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "src/core/database.h"
#include "src/persist/io_env.h"
#include "src/replica/replica.h"
#include "src/workload/incr.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::RemoveDirRecursive;

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0xfeedULL;
}

TEST(ReplicaIoFault, TransientReadErrorsBackOffAndResumeCutAligned) {
  const std::string dir = FreshDir("replica_io");
  constexpr int kTxns = 200;
  const Key k = IncrKey(0);

  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 10;
  o.wal_dir = dir.c_str();
  o.wal_flush_us = 200;
  o.wal_segment_bytes = 4096;  // several segment hand-offs under fire
  o.replication_cuts = true;

  Database db(o);
  PopulateIncr(db.store(), 4);
  db.Start();

  // The replica reads through a fault env that makes the log look like it lives on a
  // flaky disk: intermittent EINTR (retried inline) and EIO (backed off) on every
  // segment pread. The primary's own writes use the clean default env.
  FaultInjectingIoEnv fenv(FuzzSeed() ^ 0x4ead5ULL);
  FaultRule eintr;
  eintr.ops = IoOpBit(IoOp::kPread);
  eintr.path_substring = "wal-";
  eintr.err = EINTR;
  eintr.probability = 0.2;
  fenv.AddRule(eintr);
  FaultRule eio;
  eio.ops = IoOpBit(IoOp::kPread);
  eio.path_substring = "wal-";
  eio.err = EIO;
  eio.probability = 0.2;
  fenv.AddRule(eio);

  ReplicaOptions ro;
  ro.poll_us = 100;
  ro.io_env = &fenv;
  std::unique_ptr<Replica> replica = AttachReplica(db, ro);

  for (int i = 0; i < kTxns; ++i) {
    const TxnResult r = db.Execute([&](Txn& txn) { txn.Add(k, 1); });
    ASSERT_TRUE(r.committed);
  }
  db.Stop();  // seals the log with a final cut at the max committed TID

  // Despite the fault schedule the replica fully converges: transient read errors are
  // retried/backed off, never treated as corruption or EOF.
  ASSERT_TRUE(replica->WaitCaughtUp(20000));
  const ReplicaProgress p = replica->progress();
  EXPECT_FALSE(p.halted);
  EXPECT_GT(p.read_retries, 0u);  // the schedule actually bit
  EXPECT_EQ(p.last_read_errno, EIO);
  EXPECT_EQ(p.pending_txns, 0u);
  EXPECT_GT(p.published_cuts, 0u);

  // Value equality at the final cut, and the cut is aligned with the primary's seal.
  Value v;
  ASSERT_TRUE(replica->Get(k, &v));
  EXPECT_EQ(IntAt(db.store(), k), kTxns);
  EXPECT_EQ(std::get<std::int64_t>(v), kTxns);
  EXPECT_GT(fenv.injected_faults(), 0u);

  replica->Stop();
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
