// Cross-protocol randomized scan fuzz: seeded client threads run balanced transfers,
// balanced hot-key increments, balanced pair-inserts, and full-window scans against one
// table, under OCC, 2PL, and Doppel, across several PartitionConfigs — including the
// degenerate 1-partition layout, the 1-key-per-partition (shift 0) extreme, and an
// adaptive layout the coordinator narrows mid-run.
//
// Invariants checked on every committed scan transaction:
//   * scan-sum: every write transaction preserves the table's total sum (0), so any
//     serializable scan of the full window must observe sum == 0;
//   * phantom-freedom: two scans inside one transaction see identical key sequences.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rand.h"
#include "src/core/database.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

constexpr std::uint32_t kFuzzTable = 7;
constexpr std::uint64_t kBaseKeys = 32;   // pre-loaded keys 0..31, all zero
constexpr std::uint64_t kScanHi = 1ULL << 60;  // window covering every stripe

struct FuzzConfig {
  const char* name;
  bool configure;        // false: leave the default layout
  PartitionConfig cfg;
};

void RunFuzz(Protocol proto, const FuzzConfig& fc, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << ProtocolName(proto) << " / " << fc.name);
  Options opts;
  opts.protocol = proto;
  opts.num_workers = 2;
  opts.phase_us = 2000;  // cycle phases during the run (Doppel)
  opts.store_capacity = 1 << 12;
  opts.index_tune.min_inserts = 32;  // let adaptive narrowing fire on fuzz-sized volume
  Database db(opts);
  if (fc.configure) {
    db.store().ConfigureTable(kFuzzTable, fc.cfg);
  }
  for (std::uint64_t i = 0; i < kBaseKeys; ++i) {
    db.store().LoadInt(Key::Table(kFuzzTable, i), 0);
  }
  db.Start();

  constexpr int kThreads = 3;
  constexpr int kItersPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(seed + static_cast<std::uint64_t>(tid) * 7919);
      std::uint64_t next_insert = 0;
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const std::uint32_t dice = rng.NextBounded(100);
        if (dice < 30) {
          // Balanced transfer between two base keys (read-modify-write).
          const std::uint64_t a = rng.NextBounded(kBaseKeys);
          std::uint64_t b = rng.NextBounded(kBaseKeys);
          if (b == a) {
            b = (b + 1) % kBaseKeys;
          }
          const std::int64_t amt = 1 + rng.NextBounded(5);
          db.Execute([&](Txn& t) {
            const auto va = t.GetInt(Key::Table(kFuzzTable, a));
            const auto vb = t.GetInt(Key::Table(kFuzzTable, b));
            if (!va || !vb) {
              return;  // doomed execution (Doppel split phase); will be stashed
            }
            t.PutInt(Key::Table(kFuzzTable, a), *va - amt);
            t.PutInt(Key::Table(kFuzzTable, b), *vb + amt);
          });
        } else if (dice < 55) {
          // Balanced increments of the two hottest keys (splittable: lets the Doppel
          // classifier split them, so scans exercise the stash path).
          const std::int64_t amt = 1 + rng.NextBounded(3);
          db.Execute([&](Txn& t) {
            t.Add(Key::Table(kFuzzTable, 0), amt);
            t.Add(Key::Table(kFuzzTable, 1), -amt);
          });
        } else if (dice < 75) {
          // Balanced pair-insert of two fresh keys (+v, -v): grows the index without
          // disturbing the sum. Per-thread disjoint id ranges.
          const std::uint64_t k =
              kBaseKeys + static_cast<std::uint64_t>(tid) * 100000 + 2 * next_insert++;
          const std::int64_t v = 1 + rng.NextBounded(9);
          db.Execute([&](Txn& t) {
            t.PutInt(Key::Table(kFuzzTable, k), v);
            t.PutInt(Key::Table(kFuzzTable, k + 1), -v);
          });
        } else {
          // Full-window scan: sum must be zero, and a second scan in the same
          // transaction must see the identical key sequence (phantom-freedom).
          std::int64_t sum = 0;
          std::vector<std::uint64_t> first, second;
          db.Execute([&](Txn& t) {
            sum = 0;
            first.clear();
            second.clear();
            t.Scan(kFuzzTable, 0, kScanHi, 0, [&](const Key& key, const ReadResult& v) {
              sum += v.i;
              first.push_back(key.lo);
              return true;
            });
            t.Scan(kFuzzTable, 0, kScanHi, 0, [&](const Key& key, const ReadResult&) {
              second.push_back(key.lo);
              return true;
            });
          });
          // Only the committed execution's observations survive in the locals.
          if (sum != 0 || first != second) {
            failures.fetch_add(1);
            ADD_FAILURE() << "scan invariant broken: sum=" << sum
                          << " first=" << first.size() << " second=" << second.size();
          }
        }
        if (failures.load() != 0) {
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  if (fc.configure && fc.cfg.adaptive && proto == Protocol::kDoppel) {
    // The coordinator narrows at its next phase wakeup; give it a bounded window.
    for (int i = 0; i < 2000 && db.store().index().StatsFor(kFuzzTable).rebins == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Final serializable check, then a post-drain snapshot sweep over the whole index.
  std::int64_t final_sum = 0;
  std::size_t final_count = 0;
  db.Execute([&](Txn& t) {
    final_sum = 0;
    final_count = 0;
    t.Scan(kFuzzTable, 0, kScanHi, 0, [&](const Key&, const ReadResult& v) {
      final_sum += v.i;
      ++final_count;
      return true;
    });
  });
  EXPECT_EQ(final_sum, 0);
  EXPECT_GE(final_count, kBaseKeys);
  db.Stop();

  std::int64_t snapshot_sum = 0;
  std::size_t snapshot_count = 0;
  OrderedIndex::TableIndex* tab = db.store().index().FindTable(kFuzzTable);
  ASSERT_NE(tab, nullptr);
  for (IndexPartition& p : tab->partitions) {
    std::vector<std::pair<std::uint64_t, Record*>> batch;
    OrderedIndex::SnapshotRange(p, 0, ~0ULL, 0, &batch);
    for (const auto& [lo, rec] : batch) {
      (void)lo;
      const Record::IntSnapshot s = rec->ReadInt();
      if (s.present) {
        snapshot_sum += s.value;
        ++snapshot_count;
      }
    }
  }
  EXPECT_EQ(snapshot_sum, 0);
  EXPECT_EQ(snapshot_count, final_count);

  if (fc.configure && fc.cfg.adaptive && proto == Protocol::kDoppel) {
    // The skewed dense inserts must have narrowed the adaptive table's boundaries.
    const OrderedIndex::TableStats st = db.store().index().StatsFor(kFuzzTable);
    EXPECT_LT(st.shift, fc.cfg.shift) << "adaptive narrowing never fired";
    EXPECT_GE(st.rebins, 1u);
  }
}

const FuzzConfig kConfigs[] = {
    {"default", false, {}},
    {"one-partition", true, {40, 1, false}},
    {"key-per-partition", true, {0, 64, false}},
    {"tuned-16x16", true, {4, 16, false}},
};

TEST(StoreScanFuzz, Occ) {
  for (const FuzzConfig& fc : kConfigs) {
    RunFuzz(Protocol::kOcc, fc, 0xA11CE);
  }
}

TEST(StoreScanFuzz, TwoPL) {
  for (const FuzzConfig& fc : kConfigs) {
    RunFuzz(Protocol::kTwoPL, fc, 0xB0B);
  }
}

TEST(StoreScanFuzz, Doppel) {
  for (const FuzzConfig& fc : kConfigs) {
    RunFuzz(Protocol::kDoppel, fc, 0xCAFE);
  }
}

TEST(StoreScanFuzz, DoppelAdaptiveNarrowsMidRun) {
  RunFuzz(Protocol::kDoppel, FuzzConfig{"adaptive", true, {40, 64, true}}, 0xD0D0);
}

}  // namespace
}  // namespace doppel
