// Tests for the 2PL engine: lock acquisition/upgrade, timeout-based deadlock recovery,
// and exactness under concurrency.
#include <gtest/gtest.h>

#include "src/common/barrier.h"
#include "src/txn/twopl_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::EngineHarness;
using testing::IntAt;

class TwoPLTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(TwoPLEngine::Limits{}); }
  void Recreate(TwoPLEngine::Limits limits) {
    h_.engine = std::make_unique<TwoPLEngine>(h_.store, limits);
    h_.MakeWorkers(2);
  }
  EngineHarness h_;
  Worker& w0() { return *h_.workers[0]; }
  Worker& w1() { return *h_.workers[1]; }
};

TEST_F(TwoPLTest, BasicReadWrite) {
  ASSERT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.PutInt(Key::FromU64(1), 5); }),
            TxnStatus::kCommitted);
  std::int64_t v = 0;
  ASSERT_EQ(h_.TryOnce(w1(), [&](Txn& t) { v = t.GetInt(Key::FromU64(1)).value_or(-1); }),
            TxnStatus::kCommitted);
  EXPECT_EQ(v, 5);
}

TEST_F(TwoPLTest, LocksReleasedAfterCommit) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  ASSERT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
            TxnStatus::kCommitted);
  Record* r = h_.store.Find(Key::FromU64(1));
  EXPECT_FALSE(r->rw.has_writer());
  EXPECT_EQ(r->rw.reader_count(), 0u);
}

TEST_F(TwoPLTest, LocksReleasedAfterUserAbort) {
  h_.store.LoadInt(Key::FromU64(1), 7);
  EXPECT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.Add(Key::FromU64(1), 1);
                         (void)t.GetInt(Key::FromU64(1));
                         t.UserAbort();
                       }),
            TxnStatus::kUserAbort);
  Record* r = h_.store.Find(Key::FromU64(1));
  EXPECT_FALSE(r->rw.has_writer());
  EXPECT_EQ(r->rw.reader_count(), 0u);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 7);
}

TEST_F(TwoPLTest, ReadThenWriteUpgrades) {
  h_.store.LoadInt(Key::FromU64(1), 10);
  std::int64_t read = 0;
  ASSERT_EQ(h_.TryOnce(w0(),
                       [&](Txn& t) {
                         read = t.GetInt(Key::FromU64(1)).value_or(0);
                         t.PutInt(Key::FromU64(1), read * 2);
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(read, 10);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 20);
}

TEST_F(TwoPLTest, ConflictTimeoutWhenLockHeld) {
  Recreate(TwoPLEngine::Limits{.shared_spin = 200, .exclusive_spin = 200,
                               .upgrade_spin = 200});
  h_.store.LoadInt(Key::FromU64(1), 0);
  Record* r = h_.store.Find(Key::FromU64(1));
  r->rw.lock();  // simulate another transaction holding the write lock
  EXPECT_EQ(h_.TryOnce(w0(), [](Txn& t) { (void)t.GetInt(Key::FromU64(1)); }),
            TxnStatus::kConflict);
  EXPECT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
            TxnStatus::kConflict);
  r->rw.unlock();
  EXPECT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
            TxnStatus::kCommitted);
}

TEST_F(TwoPLTest, DeadlockRecoversByTimeout) {
  // Two transactions lock (A then B) and (B then A); at least one times out, aborts,
  // releases its locks, and the retry completes. The paper's 2PL never aborts because
  // its workloads cannot deadlock; ours must recover when one is induced.
  Recreate(TwoPLEngine::Limits{.shared_spin = 5000, .exclusive_spin = 5000,
                               .upgrade_spin = 5000});
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.store.LoadInt(Key::FromU64(2), 0);
  SpinBarrier barrier(2);
  h_.Parallel([&](Worker& w) {
    const Key first = Key::FromU64(w.id == 0 ? 1 : 2);
    const Key second = Key::FromU64(w.id == 0 ? 2 : 1);
    for (int i = 0; i < 200; ++i) {
      barrier.Wait();  // maximize deadlock probability
      h_.MustCommit(w, [&](Txn& t) {
        t.Add(first, 1);
        t.Add(second, 1);
      });
    }
  });
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 400);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(2)), 400);
}

TEST_F(TwoPLTest, UpgradeDeadlockBetweenTwoReaders) {
  // Both transactions read k then write k: classic upgrade deadlock; the bounded upgrade
  // spin resolves it and both eventually commit.
  Recreate(TwoPLEngine::Limits{.shared_spin = 5000, .exclusive_spin = 5000,
                               .upgrade_spin = 2000});
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < 500; ++i) {
      h_.MustCommit(w, [](Txn& t) {
        const std::int64_t v = t.GetInt(Key::FromU64(1)).value_or(0);
        t.PutInt(Key::FromU64(1), v + 1);
      });
    }
  });
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 1000);
}

TEST_F(TwoPLTest, ConcurrentAddsSumExactly) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  constexpr int kOps = 30000;
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < kOps; ++i) {
      h_.MustCommit(w, [](Txn& t) { t.Add(Key::FromU64(1), 1); });
    }
  });
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 2 * kOps);
}

TEST_F(TwoPLTest, SnapshotPairInvariantUnderConcurrency) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.store.LoadInt(Key::FromU64(2), 0);
  std::atomic<bool> mismatch{false};
  h_.Parallel([&](Worker& w) {
    if (w.id == 0) {
      for (std::int64_t i = 1; i <= 10000; ++i) {
        h_.MustCommit(w, [i](Txn& t) {
          t.PutInt(Key::FromU64(1), i);
          t.PutInt(Key::FromU64(2), i);
        });
      }
    } else {
      for (int i = 0; i < 10000; ++i) {
        std::int64_t a = 0;
        std::int64_t b = 0;
        h_.MustCommit(w, [&](Txn& t) {
          a = t.GetInt(Key::FromU64(1)).value_or(0);
          b = t.GetInt(Key::FromU64(2)).value_or(0);
        });
        if (a != b) {
          mismatch = true;
        }
      }
    }
  });
  EXPECT_FALSE(mismatch.load());
}

TEST_F(TwoPLTest, ComplexTypesUnderLocks) {
  h_.store.LoadTopK(Key::FromU64(5), 3);
  ASSERT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.TopKInsert(Key::FromU64(5), OrderKey{8, 0}, "x", 3);
                         t.OPut(Key::FromU64(6), OrderKey{4, 0}, "winner");
                       }),
            TxnStatus::kCommitted);
  const auto topk = std::get<TopKSet>(h_.store.ReadSnapshot(Key::FromU64(5)).value);
  EXPECT_EQ(topk.size(), 1u);
  const auto tuple = std::get<OrderedTuple>(h_.store.ReadSnapshot(Key::FromU64(6)).value);
  EXPECT_EQ(tuple.payload, "winner");
}

}  // namespace
}  // namespace doppel
