// Tests for the phase controller, the conflict sampler, and the worker-side transition
// protocol driven manually (no coordinator thread).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/doppel_engine.h"
#include "src/core/phase_controller.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

TEST(PhaseController, EncodeDecodeRoundTrip) {
  for (std::uint64_t seq : {0ULL, 1ULL, 77ULL, 1ULL << 40}) {
    for (Phase p : {Phase::kJoined, Phase::kSplit}) {
      const std::uint64_t w = PhaseController::Encode(seq, p);
      EXPECT_EQ(PhaseController::DecodeSeq(w), seq);
      EXPECT_EQ(PhaseController::DecodePhase(w), p);
    }
  }
}

TEST(PhaseController, InitialStateJoinedReleased) {
  PhaseController ctrl;
  EXPECT_FALSE(ctrl.TransitionInFlight());
  EXPECT_EQ(ctrl.CurrentReleasedPhase(), Phase::kJoined);
  EXPECT_EQ(ctrl.pending(), ctrl.released());
}

TEST(PhaseController, TransitionSequence) {
  PhaseController ctrl;
  const std::uint64_t w1 = ctrl.BeginTransition(Phase::kSplit);
  EXPECT_TRUE(ctrl.TransitionInFlight());
  EXPECT_EQ(PhaseController::DecodePhase(w1), Phase::kSplit);
  EXPECT_EQ(PhaseController::DecodeSeq(w1), 1u);
  ctrl.Release();
  EXPECT_FALSE(ctrl.TransitionInFlight());
  EXPECT_EQ(ctrl.CurrentReleasedPhase(), Phase::kSplit);
  const std::uint64_t w2 = ctrl.BeginTransition(Phase::kJoined);
  EXPECT_EQ(PhaseController::DecodeSeq(w2), 2u);
  ctrl.Release();
  EXPECT_EQ(ctrl.CurrentReleasedPhase(), Phase::kJoined);
}

TEST(Sampler, EveryConflictCountedAtRateOne) {
  ConflictSampler s(1);
  for (int i = 0; i < 10; ++i) {
    s.RecordConflict(Key::FromU64(1), OpCode::kAdd);
  }
  EXPECT_EQ(s.ApproxTotal(), 10u);
  int found = 0;
  for (const auto& e : s.entries()) {
    if (e.used && e.key == Key::FromU64(1)) {
      found++;
      EXPECT_EQ(e.count, 10u);
      EXPECT_EQ(e.op_counts[static_cast<int>(OpCode::kAdd)], 10u);
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(Sampler, SamplingRateApproximation) {
  ConflictSampler s(8);
  for (int i = 0; i < 800; ++i) {
    s.RecordConflict(Key::FromU64(1), OpCode::kAdd);
  }
  EXPECT_EQ(s.ApproxTotal(), 100u);  // deterministic tick-based 1/8
}

TEST(Sampler, TracksOpsSeparately) {
  ConflictSampler s(1);
  s.RecordConflict(Key::FromU64(1), OpCode::kAdd);
  s.RecordConflict(Key::FromU64(1), OpCode::kGet);
  s.RecordConflict(Key::FromU64(1), OpCode::kGet);
  for (const auto& e : s.entries()) {
    if (e.used) {
      EXPECT_EQ(e.op_counts[static_cast<int>(OpCode::kAdd)], 1u);
      EXPECT_EQ(e.op_counts[static_cast<int>(OpCode::kGet)], 2u);
    }
  }
}

TEST(Sampler, ClearResets) {
  ConflictSampler s(1);
  s.RecordConflict(Key::FromU64(1), OpCode::kAdd);
  s.Clear();
  EXPECT_EQ(s.ApproxTotal(), 0u);
  for (const auto& e : s.entries()) {
    EXPECT_FALSE(e.used);
  }
}

TEST(Sampler, HeavyHitterSurvivesChurn) {
  ConflictSampler s(1, 64);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    s.RecordConflict(Key::FromU64(777), OpCode::kAdd);  // the heavy hitter
    s.RecordConflict(Key::FromU64(rng.NextBounded(100000)), OpCode::kAdd);  // churn
  }
  std::uint32_t hot_count = 0;
  for (const auto& e : s.entries()) {
    if (e.used && e.key == Key::FromU64(777)) {
      hot_count = e.count;
    }
  }
  // Space-saving guarantees the heavy hitter stays resident with a count at least its
  // true frequency (inherited counts can only inflate it).
  EXPECT_GE(hot_count, 20000u);
}

// ---- Manual phase transitions against a real DoppelEngine ----

class ManualPhaseTest : public ::testing::Test {
 protected:
  ManualPhaseTest() : store_(1 << 10), engine_(store_, Options{}, stop_) {}

  void StartWorkers(int n) {
    for (int i = 0; i < n; ++i) {
      workers_.push_back(std::make_unique<Worker>(i, 17 + i));
    }
    engine_.RegisterWorkers(workers_);
    for (auto& w : workers_) {
      Worker* worker = w.get();
      threads_.emplace_back([this, worker] {
        while (!stop_.load()) {
          engine_.BetweenTxns(*worker);
          std::this_thread::yield();
        }
      });
    }
  }

  void TearDown() override {
    stop_ = true;
    // Unblock anyone waiting on a release.
    engine_.controller().Release();
    for (auto& t : threads_) {
      t.join();
    }
  }

  std::atomic<bool> stop_{false};
  Store store_;
  DoppelEngine engine_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

TEST_F(ManualPhaseTest, WorkersFollowTransitions) {
  StartWorkers(2);
  EXPECT_EQ(engine_.CurrentPhase(*workers_[0]), Phase::kJoined);

  engine_.controller().BeginTransition(Phase::kSplit);
  engine_.WaitForWorkerAcks();
  engine_.BarrierBuildPlan();
  engine_.controller().Release();
  // Workers observe the release and enter the split phase.
  for (auto& w : workers_) {
    while (engine_.CurrentPhase(*w) != Phase::kSplit && !stop_.load()) {
      std::this_thread::yield();
    }
    EXPECT_EQ(engine_.CurrentPhase(*w), Phase::kSplit);
  }

  engine_.controller().BeginTransition(Phase::kJoined);
  engine_.WaitForWorkerAcks();
  engine_.BarrierAfterReconcile();
  engine_.controller().Release();
  for (auto& w : workers_) {
    while (engine_.CurrentPhase(*w) != Phase::kJoined && !stop_.load()) {
      std::this_thread::yield();
    }
    EXPECT_EQ(engine_.CurrentPhase(*w), Phase::kJoined);
  }
}

TEST_F(ManualPhaseTest, ManualLabelSplitsDuringSplitPhase) {
  const Key hot = Key::FromU64(5);
  store_.LoadInt(hot, 0);
  engine_.MarkSplitManually(hot, OpCode::kAdd);
  EXPECT_TRUE(engine_.HasSplitCandidates());
  StartWorkers(2);

  engine_.controller().BeginTransition(Phase::kSplit);
  engine_.WaitForWorkerAcks();
  engine_.BarrierBuildPlan();
  EXPECT_EQ(engine_.LastPlanSize(), 1u);
  Record* r = store_.Find(hot);
  EXPECT_TRUE(r->IsSplit());
  EXPECT_EQ(static_cast<OpCode>(r->split_op()), OpCode::kAdd);
  engine_.controller().Release();

  engine_.controller().BeginTransition(Phase::kJoined);
  engine_.WaitForWorkerAcks();
  engine_.BarrierAfterReconcile();
  engine_.controller().Release();
  EXPECT_FALSE(r->IsSplit());  // reconciled again in joined phases
}

TEST_F(ManualPhaseTest, PlanSnapshotReflectsEntries) {
  engine_.MarkSplitManually(Key::FromU64(1), OpCode::kMax);
  engine_.MarkSplitManually(Key::FromU64(2), OpCode::kTopKInsert, 7);
  StartWorkers(1);
  engine_.controller().BeginTransition(Phase::kSplit);
  engine_.WaitForWorkerAcks();
  engine_.BarrierBuildPlan();
  engine_.controller().Release();
  const auto entries = engine_.LastPlanEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, Key::FromU64(1));
  EXPECT_EQ(entries[0].second, OpCode::kMax);
  EXPECT_EQ(entries[1].second, OpCode::kTopKInsert);
  engine_.controller().BeginTransition(Phase::kJoined);
  engine_.WaitForWorkerAcks();
  engine_.BarrierAfterReconcile();
  engine_.controller().Release();
}

TEST(ClassifierThresholds, NoCandidatesWithoutConflicts) {
  std::atomic<bool> stop{false};
  Store store(64);
  Options opts;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 1));
  engine.RegisterWorkers(workers);
  EXPECT_FALSE(engine.HasSplitCandidates());
}

TEST(ClassifierThresholds, ManualOnlyIgnoresSampledConflicts) {
  std::atomic<bool> stop{false};
  Store store(64);
  Options opts;
  opts.manual_split_only = true;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 1));
  engine.RegisterWorkers(workers);
  store.LoadInt(Key::FromU64(1), 0);
  // Simulate sampled conflicts via the hook.
  Worker& w = *workers[0];
  w.txn.Reset(&engine, &w);
  w.txn.conflict_record = store.Find(Key::FromU64(1));
  w.txn.conflict_op = OpCode::kAdd;
  for (int i = 0; i < 100; ++i) {
    engine.OnConflict(w, w.txn);
  }
  EXPECT_FALSE(engine.HasSplitCandidates());
  engine.BarrierBuildPlan();
  EXPECT_EQ(engine.LastPlanSize(), 0u);
}

TEST(ClassifierThresholds, SampledConflictsProduceSplitPlan) {
  std::atomic<bool> stop{false};
  Store store(64);
  Options opts;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 1));
  engine.RegisterWorkers(workers);
  store.LoadInt(Key::FromU64(1), 0);
  Worker& w = *workers[0];
  w.txn.Reset(&engine, &w);
  w.txn.conflict_record = store.Find(Key::FromU64(1));
  w.txn.conflict_op = OpCode::kAdd;
  for (int i = 0; i < 100; ++i) {
    engine.OnConflict(w, w.txn);
  }
  EXPECT_TRUE(engine.HasSplitCandidates());
  engine.BarrierBuildPlan();
  ASSERT_EQ(engine.LastPlanSize(), 1u);
  EXPECT_TRUE(store.Find(Key::FromU64(1))->IsSplit());
  engine.BarrierAfterReconcile();
  EXPECT_FALSE(store.Find(Key::FromU64(1))->IsSplit());
}

TEST(ClassifierThresholds, ReadDominatedConflictsDoNotSplit) {
  std::atomic<bool> stop{false};
  Store store(64);
  Options opts;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 1));
  engine.RegisterWorkers(workers);
  store.LoadInt(Key::FromU64(1), 0);
  Worker& w = *workers[0];
  // 95% of conflicts are read (kGet) conflicts: splitting would stash the readers.
  for (int i = 0; i < 100; ++i) {
    w.txn.Reset(&engine, &w);
    w.txn.conflict_record = store.Find(Key::FromU64(1));
    w.txn.conflict_op = i < 95 ? OpCode::kGet : OpCode::kAdd;
    engine.OnConflict(w, w.txn);
  }
  engine.BarrierBuildPlan();
  EXPECT_EQ(engine.LastPlanSize(), 0u);
}

TEST(ClassifierThresholds, MaxSplitRecordsCap) {
  std::atomic<bool> stop{false};
  Store store(1 << 10);
  Options opts;
  opts.classifier.max_split_records = 3;
  opts.classifier.split_conflict_fraction = 0.0;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 1));
  engine.RegisterWorkers(workers);
  Worker& w = *workers[0];
  for (std::uint64_t k = 0; k < 10; ++k) {
    store.LoadInt(Key::FromU64(k), 0);
    for (int i = 0; i < 50; ++i) {
      w.txn.Reset(&engine, &w);
      w.txn.conflict_record = store.Find(Key::FromU64(k));
      w.txn.conflict_op = OpCode::kAdd;
      engine.OnConflict(w, w.txn);
    }
  }
  engine.BarrierBuildPlan();
  EXPECT_EQ(engine.LastPlanSize(), 3u);
}

}  // namespace
}  // namespace doppel
