#include "src/store/record_map.h"

#include <algorithm>
#include <bit>

#include "src/common/dassert.h"

namespace doppel {

RecordMap::RecordMap(std::size_t capacity_hint)
    : buckets_(std::bit_ceil(capacity_hint < 16 ? std::size_t{16} : capacity_hint)),
      mask_(buckets_.size() - 1),
      insert_locks_(std::make_unique<Spinlock[]>(kInsertStripes)) {}

RecordMap::~RecordMap() {
  for (Bucket& b : buckets_) {
    // Destructor: no concurrent access remains, any order suffices.
    Record* r = b.head.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Record* next = r->hash_next.load(std::memory_order_relaxed);
      delete r;
      r = next;
    }
  }
}

Record* RecordMap::Find(const Key& key) const {
  const Bucket& b = buckets_[BucketIndex(key)];
  for (Record* r = b.head.load(std::memory_order_acquire); r != nullptr;
       r = r->hash_next.load(std::memory_order_acquire)) {
    if (r->key() == key) {
      return r;
    }
  }
  return nullptr;
}

Record* RecordMap::GetOrCreate(const Key& key, RecordType type, std::size_t topk_k,
                               bool* created) {
  if (Record* r = Find(key)) {
    if (created != nullptr) {
      *created = false;
    }
    return r;
  }
  const std::size_t index = BucketIndex(key);
  Spinlock& stripe = insert_locks_[index & (kInsertStripes - 1)];
  stripe.lock();
  // Re-scan under the stripe lock: a racing inserter may have won.
  Bucket& b = buckets_[index];
  for (Record* r = b.head.load(std::memory_order_relaxed); r != nullptr;
       r = r->hash_next.load(std::memory_order_relaxed)) {
    if (r->key() == key) {
      stripe.unlock();
      if (created != nullptr) {
        *created = false;
      }
      return r;
    }
  }
  auto* rec = new Record(key, type, topk_k);
  // Chain writes stay relaxed: only the head release-store below publishes the new
  // record (readers reach hash_next through it with acquire loads). The stripe lock
  // already orders us against other inserters.
  rec->hash_next.store(b.head.load(std::memory_order_relaxed), std::memory_order_relaxed);
  b.head.store(rec, std::memory_order_release);
  stripe.unlock();
  // Size gauge + monotonic insert count; racy reads by contract (size()/created()
  // document call-time semantics).
  size_.fetch_add(1, std::memory_order_relaxed);
  created_.fetch_add(1, std::memory_order_relaxed);
  if (created != nullptr) {
    *created = true;
  }
  return rec;
}

std::size_t RecordMap::SweepRange(std::size_t begin, std::size_t end,
                                  FunctionRef<bool(Record&)> should_reclaim,
                                  std::vector<Record*>* retired) {
  end = std::min(end, buckets_.size());
  std::size_t unlinked = 0;
  for (std::size_t i = begin; i < end; ++i) {
    Spinlock& stripe = insert_locks_[i & (kInsertStripes - 1)];
    stripe.lock();
    Bucket& b = buckets_[i];
    std::atomic<Record*>* link = &b.head;
    // Chain reads stay relaxed: the stripe lock excludes every chain *writer* (inserts
    // and other sweeps), so each link holds the last value published under this lock.
    Record* r = link->load(std::memory_order_relaxed);
    while (r != nullptr) {
      Record* next = r->hash_next.load(std::memory_order_relaxed);
      if (should_reclaim(*r)) {
        // Splice r out. Release so a concurrent lock-free reader that loads this link
        // sees a fully-published successor. r's own hash_next is left intact: a reader
        // already standing on r can still finish the chain until r is freed.
        link->store(next, std::memory_order_release);
        retired->push_back(r);
        ++unlinked;
      } else {
        link = &r->hash_next;
      }
      r = next;
    }
    stripe.unlock();
  }
  if (unlinked != 0) {
    // Size gauge; racy reads by contract (size() documents call-time semantics).
    size_.fetch_sub(unlinked, std::memory_order_relaxed);
  }
  return unlinked;
}

Record* RecordMap::ReplaceWithType(const Key& key, RecordType type, std::size_t topk_k,
                                   std::vector<Record*>* retired) {
  const std::size_t index = BucketIndex(key);
  Spinlock& stripe = insert_locks_[index & (kInsertStripes - 1)];
  stripe.lock();
  Bucket& b = buckets_[index];
  std::atomic<Record*>* link = &b.head;
  // Relaxed chain reads: the stripe lock excludes all chain writers (see SweepRange).
  Record* old = link->load(std::memory_order_relaxed);
  while (old != nullptr && !(old->key() == key)) {
    link = &old->hash_next;
    old = link->load(std::memory_order_relaxed);
  }
  DOPPEL_CHECK(old != nullptr);  // caller contract: the key exists
  auto* rec = new Record(key, type, topk_k);
  // The fresh record takes the old one's chain position; release publishes it (and its
  // relaxed-initialized hash_next) to lock-free readers in one step.
  rec->hash_next.store(old->hash_next.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  link->store(rec, std::memory_order_release);
  stripe.unlock();
  retired->push_back(old);
  return rec;
}

void RecordMap::RehashQuiescent(std::size_t capacity_hint) {
  const std::size_t want =
      std::bit_ceil(capacity_hint < 16 ? std::size_t{16} : capacity_hint);
  if (want <= buckets_.size()) {
    return;  // never shrink: shorter chains were already paid for
  }
  std::vector<Bucket> fresh(want);
  const std::uint64_t fresh_mask = want - 1;
  for (Bucket& b : buckets_) {
    // Quiescent by caller contract: no concurrent access of any kind, relaxed
    // throughout; the next reader is ordered by whatever starts it.
    Record* r = b.head.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Record* next = r->hash_next.load(std::memory_order_relaxed);
      Bucket& nb = fresh[r->key().Hash() & fresh_mask];
      // Quiescent relink (same invariant as above: no concurrent access).
      r->hash_next.store(nb.head.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      nb.head.store(r, std::memory_order_relaxed);
      r = next;
    }
  }
  buckets_ = std::move(fresh);
  mask_ = fresh_mask;
}

}  // namespace doppel
