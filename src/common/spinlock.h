// Spinlocks used throughout the store and engines.
//
// Critical sections in Doppel are tiny (copy a value, bump a version), so test-and-
// test-and-set spinning with a pause hint beats OS mutexes. The 2PL engine additionally
// needs a reader/writer lock with try semantics so it can implement bounded-wait deadlock
// recovery.
#ifndef DOPPEL_SRC_COMMON_SPINLOCK_H_
#define DOPPEL_SRC_COMMON_SPINLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"

namespace doppel {

// Simple exclusive spinlock. Satisfies Lockable (usable with std::lock_guard).
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool is_locked() const { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

// Reader/writer spinlock with writer preference and try_* variants.
//
// State word: bit 31 = writer held, bit 30 = writer waiting, low 30 bits = reader count.
// Writer preference keeps a stream of readers from starving the single writer that 2PL
// update transactions need on a hot record.
class RWSpinlock {
 public:
  RWSpinlock() = default;
  RWSpinlock(const RWSpinlock&) = delete;
  RWSpinlock& operator=(const RWSpinlock&) = delete;

  bool try_lock() {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void lock() {
    // Announce intent so new readers back off, then wait for the lock word to drain.
    while (true) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 || s == kWriterWaiting) {
        if (state_.compare_exchange_weak(s, kWriter, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if ((s & kWriterWaiting) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
  }

  void unlock() {
    // Preserve a concurrent waiter's announcement: only clear the held bit.
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

  bool try_lock_shared() {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & (kWriter | kWriterWaiting)) == 0) {
      if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void lock_shared() {
    while (!try_lock_shared()) {
      CpuRelax();
    }
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  // Atomically turn a held shared lock into the exclusive lock if this reader is alone.
  bool try_upgrade() {
    std::uint32_t expected = 1;
    if (state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return true;
    }
    // Also allow upgrade when we ourselves announced writer intent earlier.
    expected = 1 | kWriterWaiting;
    return state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Bounded-spin acquisition, used by 2PL for deadlock recovery: give up after `iters`
  // pause iterations instead of blocking forever. Announce/clear writer intent so a
  // stream of readers cannot starve a bounded writer.
  bool try_lock_for(std::uint32_t iters) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 || s == kWriterWaiting) {
        if (state_.compare_exchange_weak(s, kWriter, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return true;
        }
        continue;
      }
      if ((s & kWriterWaiting) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
    state_.fetch_and(~kWriterWaiting, std::memory_order_relaxed);
    return false;
  }

  bool try_lock_shared_for(std::uint32_t iters) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      if (try_lock_shared()) {
        return true;
      }
      CpuRelax();
    }
    return false;
  }

  // Bounded upgrade of a held shared lock. On failure the shared lock is still held.
  bool try_upgrade_for(std::uint32_t iters) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      if (try_upgrade()) {
        return true;
      }
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterWaiting) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
    state_.fetch_and(~kWriterWaiting, std::memory_order_relaxed);
    return false;
  }

  bool has_writer() const {
    return (state_.load(std::memory_order_relaxed) & kWriter) != 0;
  }
  std::uint32_t reader_count() const {
    return state_.load(std::memory_order_relaxed) & kReaderMask;
  }

 private:
  static constexpr std::uint32_t kWriter = 1u << 31;
  static constexpr std::uint32_t kWriterWaiting = 1u << 30;
  static constexpr std::uint32_t kReaderMask = kWriterWaiting - 1;

  std::atomic<std::uint32_t> state_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_SPINLOCK_H_
