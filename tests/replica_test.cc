// Phase-aligned read replica tests: cut consistency (no view ever observes a state
// between joined-phase cuts), bootstrap-from-checkpoint-then-tail equivalence with
// serial replay prefixes, retention leases across checkpoints, and the lag/watermark
// surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <thread>

#include "src/core/database.h"
#include "src/persist/manifest.h"
#include "src/persist/wal.h"
#include "src/replica/replica.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "src/workload/report.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::RemoveDirRecursive;

Options ReplicatedOptions(const std::string& dir) {
  Options o;
  o.protocol = Protocol::kDoppel;  // cuts ride the coordinator's quiesce barriers
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 12;
  o.wal_dir = dir.c_str();
  o.wal_flush_us = 500;
  return o;
}

std::int64_t ReplicaInt(const Replica::View& v, const Key& k) {
  Value val;
  return v.Get(k, &val) ? std::get<std::int64_t>(val) : 0;
}

// Every transaction increments keys A and B together, so A == B in every committed
// state. A view that ever observes A != B — via Get or via Scan — caught the replica
// between transactions, i.e. publishing a non-cut-aligned prefix.
TEST(Replica, ViewsNeverObserveStateBetweenCuts) {
  const std::string dir = FreshDir("replica_cuts");
  const Key a = IncrKey(0);
  const Key b = IncrKey(1);
  constexpr int kTxns = 600;

  Options o = ReplicatedOptions(dir);
  Database db(o);
  PopulateIncr(db.store(), 2);
  db.Start();

  std::atomic<int> hook_violations{0};
  std::atomic<int> reader_violations{0};
  std::atomic<std::uint64_t> hook_runs{0};
  Replica* rp = nullptr;
  ReplicaOptions ropts;
  ropts.on_publish = [&] {
    // Runs outside the publish lock after every cut: the freshest published state.
    Replica::View v(*rp);
    std::int64_t sa = 0;
    std::int64_t sb = 0;
    v.Scan(0, 0, 8, 0, [&](const Key& k, const Value& val) {
      (k.lo == 0 ? sa : sb) = std::get<std::int64_t>(val);
      return true;
    });
    if (sa != sb) {
      hook_violations.fetch_add(1);
    }
    if (ReplicaInt(v, a) != ReplicaInt(v, b)) {
      hook_violations.fetch_add(1);
    }
    hook_runs.fetch_add(1);
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  rp = replica.get();
  replica->AttachPrimary(db.wal());
  replica->Start();

  // Concurrent reader hammering views while the tailer publishes.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      Replica::View v(*rp);
      if (ReplicaInt(v, a) != ReplicaInt(v, b)) {
        reader_violations.fetch_add(1);
      }
    }
  });

  for (int i = 0; i < kTxns; ++i) {
    const TxnResult res = db.Execute([&](Txn& txn) {
      txn.Add(a, 1);
      txn.Add(b, 1);
    });
    ASSERT_TRUE(res.committed);
  }
  db.Stop();  // appends a final cut covering everything

  ASSERT_TRUE(replica->WaitCaughtUp(/*timeout_ms=*/10000));
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(hook_violations.load(), 0);
  EXPECT_EQ(reader_violations.load(), 0);
  EXPECT_GT(hook_runs.load(), 0u);
  {
    Replica::View v(*replica);
    EXPECT_EQ(ReplicaInt(v, a), kTxns);
    EXPECT_EQ(ReplicaInt(v, b), kTxns);
  }

  const ReplicaProgress p = replica->progress();
  EXPECT_TRUE(p.attached);
  EXPECT_FALSE(p.halted);
  EXPECT_EQ(p.lag_bytes, 0u);
  EXPECT_EQ(p.pending_txns, 0u);
  EXPECT_EQ(p.applied_txns, static_cast<std::uint64_t>(kTxns));
  EXPECT_GT(p.published_cuts, 0u);
  EXPECT_GT(p.shipped_bytes, 0u);
  EXPECT_GT(p.applied_cut_tid, 0u);
  EXPECT_EQ(db.wal()->cuts_emitted(), p.shipped_entries - p.applied_txns);

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(dir);
}

// Serial-prefix equivalence at every published cut: transaction i does
// Add(counter, 1) + PutInt(marker, i), executed serially, with both keys conflicting in
// every transaction — so per-record TID order equals the serial order and the state at
// any cut must satisfy counter == marker + 1 (an exact serial replay prefix). The
// replica attaches only after a checkpoint exists, so it exercises the
// bootstrap-from-checkpoint-then-tail path.
TEST(Replica, BootstrapFromCheckpointThenTailMatchesSerialPrefix) {
  const std::string dir = FreshDir("replica_boot");
  const Key counter = IncrKey(0);
  const Key marker = IncrKey(1);
  constexpr int kPreCheckpoint = 150;
  constexpr int kPostCheckpoint = 400;

  Options o = ReplicatedOptions(dir);
  o.replication_cuts = true;  // cuts exist before the replica's lease does
  Database db(o);
  PopulateIncr(db.store(), 2);
  db.Start();

  auto run_one = [&](int i) {
    const TxnResult res = db.Execute([&](Txn& txn) {
      txn.Add(counter, 1);
      txn.PutInt(marker, i);
    });
    ASSERT_TRUE(res.committed);
  };
  for (int i = 0; i < kPreCheckpoint; ++i) {
    run_one(i);
  }
  ASSERT_TRUE(db.RequestCheckpoint());
  for (int spin = 0; spin < 4000 && db.wal()->checkpoints_taken() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(db.wal()->checkpoints_taken(), 1u);

  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> cuts_checked{0};
  Replica* rp = nullptr;
  ReplicaOptions ropts;
  ropts.on_publish = [&] {
    Replica::View v(*rp);
    const std::int64_t c = ReplicaInt(v, counter);
    const std::int64_t m = ReplicaInt(v, marker);
    if (c != m + 1) {
      violations.fetch_add(1);
    }
    cuts_checked.fetch_add(1);
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  rp = replica.get();
  replica->AttachPrimary(db.wal());
  replica->Start();

  for (int i = kPreCheckpoint; i < kPreCheckpoint + kPostCheckpoint; ++i) {
    run_one(i);
  }
  db.Stop();
  ASSERT_TRUE(replica->WaitCaughtUp(/*timeout_ms=*/10000));

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(cuts_checked.load(), 0u);
  const ReplicaProgress p = replica->progress();
  EXPECT_GT(p.bootstrap_records, 0u) << "replica did not bootstrap from the checkpoint";
  {
    Replica::View v(*replica);
    EXPECT_EQ(ReplicaInt(v, counter), kPreCheckpoint + kPostCheckpoint);
    EXPECT_EQ(ReplicaInt(v, marker), kPreCheckpoint + kPostCheckpoint - 1);
  }
  // Replica final state matches the primary record for record.
  EXPECT_EQ(IntAt(replica->store(), counter), IntAt(db.store(), counter));
  EXPECT_EQ(IntAt(replica->store(), marker), IntAt(db.store(), marker));

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(dir);
}

PendingWrite IntWrite(Record* r, OpCode op, std::int64_t n) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  return w;
}

// WAL-level retention: while a lease's next-needed segment has not passed a sealed
// segment, a checkpoint must move it to the manifest's retained set (file kept on
// disk) instead of unlinking it; advancing the lease past everything prunes the
// retained files. Without any lease the original delete-on-checkpoint behaviour holds.
TEST(Replica, RetentionLeaseKeepsSegmentsThroughCheckpoint) {
  const std::string dir = FreshDir("replica_lease");
  Store store(64);
  store.LoadInt(Key::FromU64(1), 0);
  Record* r = store.Find(Key::FromU64(1));
  WriteArena arena;

  WalOptions wo;
  wo.segment_bytes = 128;  // a txn or two per segment
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();
  for (int i = 0; i < 16; ++i) {
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 1));
    wal.Append(0, 256u * static_cast<std::uint64_t>(i + 1), ws, {}, arena);
    wal.Flush();
  }
  Manifest before;
  ASSERT_TRUE(Manifest::Load(dir, &before));
  ASSERT_GE(before.live_segments.size(), 3u);
  // The checkpoint seals the currently-active segment and subsumes it along with the
  // already-sealed ones, so under a lease every pre-checkpoint live segment is
  // retained.
  const std::vector<std::uint64_t> sealed = before.live_segments;

  // Lease at the front: the "replica" has shipped nothing yet.
  const int lease = wal.AcquireRetentionLease();
  EXPECT_EQ(wal.retention_leases(), 1);
  wal.WriteCheckpoint(store);

  Manifest after;
  ASSERT_TRUE(Manifest::Load(dir, &after));
  EXPECT_EQ(after.retained_segments, sealed) << "checkpoint dropped leased segments";
  for (const std::uint64_t seg : sealed) {
    EXPECT_TRUE(std::ifstream(dir + "/" + Manifest::SegmentFileName(seg)).good())
        << "retained segment " << seg << " missing on disk";
  }

  // Recovery must NOT replay retained segments (their effects are in the checkpoint):
  // a fresh store recovered from the directory sees the checkpointed value once, not
  // doubled by re-replaying the retained history. (The test store was not mutated by
  // the appends, so the checkpoint holds 0 and replayed_txns counts only live-segment
  // entries.)
  {
    Store recovered(64);
    WriteAheadLog reopened(dir);
    const RecoveryResult res = reopened.Recover(&recovered);
    EXPECT_TRUE(res.had_checkpoint);
    EXPECT_EQ(res.replayed_txns, 0u) << "retained segments were replayed";
  }

  // Mid-catch-up advance: past the first retained segment only — it is pruned, the
  // rest stay.
  wal.AdvanceRetentionLease(lease, sealed[1]);
  Manifest mid;
  ASSERT_TRUE(Manifest::Load(dir, &mid));
  EXPECT_EQ(mid.retained_segments,
            std::vector<std::uint64_t>(sealed.begin() + 1, sealed.end()));
  EXPECT_FALSE(std::ifstream(dir + "/" + Manifest::SegmentFileName(sealed[0])).good());

  // Advance past everything: all retained files pruned.
  wal.AdvanceRetentionLease(lease, after.live_segments.back() + 1);
  Manifest done;
  ASSERT_TRUE(Manifest::Load(dir, &done));
  EXPECT_TRUE(done.retained_segments.empty());
  for (const std::uint64_t seg : sealed) {
    EXPECT_FALSE(std::ifstream(dir + "/" + Manifest::SegmentFileName(seg)).good());
  }
  wal.ReleaseRetentionLease(lease);
  EXPECT_EQ(wal.retention_leases(), 0);
  RemoveDirRecursive(dir);
}

// End-to-end retention: a checkpoint fires while the replica is paused mid-catch-up
// (its tailer blocked in on_publish), so the segments it still needs are only
// reachable through the retained set — after unblocking it must converge to the full
// final state.
TEST(Replica, CheckpointWhileReplicaMidCatchUpStillConverges) {
  const std::string dir = FreshDir("replica_ckpt_race");
  const Key k = IncrKey(0);
  constexpr int kFirst = 120;
  constexpr int kSecond = 300;

  Options o = ReplicatedOptions(dir);
  o.wal_segment_bytes = 4096;  // several segments over the run
  Database db(o);
  PopulateIncr(db.store(), 1);
  db.Start();

  std::atomic<bool> gate_open{false};
  std::atomic<std::uint64_t> publishes{0};
  ReplicaOptions ropts;
  ropts.on_publish = [&] {
    publishes.fetch_add(1);
    // Pause the tailer after its first publish until the checkpoint has landed.
    while (!gate_open.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  replica->AttachPrimary(db.wal());
  replica->Start();

  for (int i = 0; i < kFirst; ++i) {
    ASSERT_TRUE(db.Execute([&](Txn& txn) { txn.Add(k, 1); }).committed);
  }
  // Wait until the tailer is provably parked in the hook.
  for (int spin = 0; spin < 10000 && publishes.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(publishes.load(), 0u);

  for (int i = 0; i < kSecond; ++i) {
    ASSERT_TRUE(db.Execute([&](Txn& txn) { txn.Add(k, 1); }).committed);
  }
  ASSERT_TRUE(db.RequestCheckpoint());
  for (int spin = 0; spin < 4000 && db.wal()->checkpoints_taken() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(db.wal()->checkpoints_taken(), 1u);

  gate_open.store(true, std::memory_order_release);
  db.Stop();
  ASSERT_TRUE(replica->WaitCaughtUp(/*timeout_ms=*/10000));
  EXPECT_EQ(IntAt(replica->store(), k), kFirst + kSecond);
  EXPECT_FALSE(replica->progress().halted);

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(dir);
}

// The --replica wiring used by benches: attach via the RunWorkload on_started hook and
// surface watermarks through RunMetrics.
TEST(Replica, RunWorkloadMetricsSurface) {
  const std::string dir = FreshDir("replica_metrics");
  Options o = ReplicatedOptions(dir);
  Database db(o);
  PopulateIncr(db.store(), 8);
  std::atomic<std::uint64_t> hot{0};

  std::unique_ptr<Replica> replica;
  RunMetrics m = RunWorkload(
      db, MakeIncr1Factory(8, 100, &hot), /*measure_ms=*/300, /*warmup_ms=*/50,
      [&](Database& started) { replica = AttachReplica(started); });
  ASSERT_NE(replica, nullptr);
  ASSERT_TRUE(replica->WaitCaughtUp(/*timeout_ms=*/10000));
  FillReplicaMetrics(*replica, &m);

  EXPECT_TRUE(m.wal_enabled);
  EXPECT_GT(m.wal_cuts, 0u);
  EXPECT_TRUE(m.replica_enabled);
  EXPECT_GT(m.replica_cuts, 0u);
  EXPECT_GT(m.replica_cut_tid, 0u);
  EXPECT_EQ(m.replica_applied_txns, m.wal_appended_txns);
  EXPECT_EQ(m.replica_lag_bytes, 0u);
  EXPECT_FALSE(WalSummary(m).empty());

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
