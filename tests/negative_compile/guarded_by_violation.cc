// Negative-compile fixture: accessing a GUARDED_BY member without holding its
// mutex. Under clang with -Werror=thread-safety this translation unit MUST fail
// to compile; CMake's configure-time try_compile asserts exactly that (see the
// thread-safety teeth check in CMakeLists.txt). If it ever starts compiling, the
// annotation macros have silently become no-ops under clang and every contract
// in src/ is unenforced. Compare guarded_by_ok.cc, the positive control.
#include "src/common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    doppel::MutexLock lock(mu_);
    ++value_;
  }

  // BAD: reads value_ with mu_ not held — the line this fixture exists for.
  int UnguardedRead() const { return value_; }

 private:
  mutable doppel::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.UnguardedRead();
}
