// Runtime semantics of the capability-annotated lock wrappers (src/common/mutex.h,
// src/common/spinlock.h). The Clang thread-safety analysis checks that callers hold
// the right capability; these tests check that the wrappers actually provide it:
// mutual exclusion, reader sharing, writer preference, bounded-try timeout behavior,
// and the intent-bit cleanup that keeps a timed-out writer from wedging readers.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/mutex.h"
#include "src/common/spinlock.h"

namespace doppel {
namespace {

// ---- Mutex / MutexLock ----

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.lock();
  bool got = true;
  std::thread peek([&] {
    if (mu.try_lock()) {
      got = true;
      mu.unlock();
    } else {
      got = false;
    }
  });
  peek.join();
  EXPECT_FALSE(got);
  mu.unlock();
  std::thread retry([&] {
    if (mu.try_lock()) {
      got = true;
      mu.unlock();
    } else {
      got = false;
    }
  });
  retry.join();
  EXPECT_TRUE(got);
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  struct Shared {
    Mutex mu;
    std::int64_t value GUARDED_BY(mu) = 0;
  } s;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(s.mu);
        ++s.value;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  MutexLock lock(s.mu);
  EXPECT_EQ(s.value, static_cast<std::int64_t>(kThreads) * kIters);
}

// ---- SharedMutex / WriterMutexLock / ReaderMutexLock ----

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  mu.lock_shared();
  bool writer_got = true;
  bool reader_got = false;
  std::thread peek([&] {
    if (mu.try_lock()) {
      writer_got = true;
      mu.unlock();
    } else {
      writer_got = false;
    }
    if (mu.try_lock_shared()) {
      reader_got = true;
      mu.unlock_shared();
    } else {
      reader_got = false;
    }
  });
  peek.join();
  EXPECT_FALSE(writer_got) << "writer acquired while a reader held the lock";
  EXPECT_TRUE(reader_got) << "second reader failed to share";
  mu.unlock_shared();
  std::thread writer([&] {
    if (mu.try_lock()) {
      writer_got = true;
      mu.unlock();
    } else {
      writer_got = false;
    }
  });
  writer.join();
  EXPECT_TRUE(writer_got);
}

TEST(SharedMutexTest, WriterGuardExcludesReaders) {
  SharedMutex mu;
  bool reader_got = true;
  {
    WriterMutexLock lock(mu);
    std::thread peek([&] {
      if (mu.try_lock_shared()) {
        reader_got = true;
        mu.unlock_shared();
      } else {
        reader_got = false;
      }
    });
    peek.join();
    EXPECT_FALSE(reader_got);
  }
  std::thread retry([&] {
    if (mu.try_lock_shared()) {
      reader_got = true;
      mu.unlock_shared();
    } else {
      reader_got = false;
    }
  });
  retry.join();
  EXPECT_TRUE(reader_got) << "guard destructor did not release the writer lock";
}

TEST(SharedMutexTest, GuardedCounterUnderReadersAndWriters) {
  struct Shared {
    SharedMutex mu;
    std::int64_t value GUARDED_BY(mu) = 0;
  } s;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 5000;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterMutexLock lock(s.mu);
        // Two non-atomic writes; a reader overlapping a writer would see the tear.
        ++s.value;
        ++s.value;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ReaderMutexLock lock(s.mu);
        if (s.value % 2 != 0) {
          torn.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(torn.load()) << "reader observed a half-applied writer update";
  WriterMutexLock lock(s.mu);
  EXPECT_EQ(s.value, static_cast<std::int64_t>(kWriters) * kIters * 2);
}

// ---- Spinlock / SpinlockGuard ----

TEST(SpinlockTest, TryLockAndDiagnostics) {
  Spinlock mu;
  EXPECT_FALSE(mu.is_locked());
  mu.lock();
  EXPECT_TRUE(mu.is_locked());
  bool got = true;
  std::thread peek([&] {
    if (mu.try_lock()) {
      got = true;
      mu.unlock();
    } else {
      got = false;
    }
  });
  peek.join();
  EXPECT_FALSE(got);
  mu.unlock();
  EXPECT_FALSE(mu.is_locked());
}

TEST(SpinlockTest, GuardProvidesMutualExclusion) {
  struct Shared {
    Spinlock mu;
    std::int64_t value GUARDED_BY(mu) = 0;
  } s;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinlockGuard lock(s.mu);
        ++s.value;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  SpinlockGuard lock(s.mu);
  EXPECT_EQ(s.value, static_cast<std::int64_t>(kThreads) * kIters);
}

// ---- RWSpinlock ----

TEST(RWSpinlockTest, WriterExcludesEverything) {
  RWSpinlock mu;
  mu.lock();
  EXPECT_TRUE(mu.has_writer());
  bool reader_got = true;
  bool writer_got = true;
  std::thread peek([&] {
    if (mu.try_lock_shared()) {
      reader_got = true;
      mu.unlock_shared();
    } else {
      reader_got = false;
    }
    if (mu.try_lock()) {
      writer_got = true;
      mu.unlock();
    } else {
      writer_got = false;
    }
  });
  peek.join();
  EXPECT_FALSE(reader_got);
  EXPECT_FALSE(writer_got);
  mu.unlock();
  EXPECT_FALSE(mu.has_writer());
}

TEST(RWSpinlockTest, ReadersShareAndCount) {
  RWSpinlock mu;
  mu.lock_shared();
  bool second = false;
  std::thread peek([&] {
    if (mu.try_lock_shared()) {
      second = true;
      EXPECT_EQ(mu.reader_count(), 2u);
      mu.unlock_shared();
    } else {
      second = false;
    }
  });
  peek.join();
  EXPECT_TRUE(second);
  EXPECT_EQ(mu.reader_count(), 1u);
  mu.unlock_shared();
  EXPECT_EQ(mu.reader_count(), 0u);
}

TEST(RWSpinlockTest, BoundedWriterTimeoutClearsIntentBit) {
  RWSpinlock mu;
  mu.lock_shared();
  bool writer_got = true;
  std::thread bounded([&] {
    // Must time out: a reader holds the lock for the whole attempt.
    if (mu.try_lock_for(1000)) {
      writer_got = true;
      mu.unlock();
    } else {
      writer_got = false;
    }
  });
  bounded.join();
  EXPECT_FALSE(writer_got);
  // The timed-out writer's intent announcement must not wedge future readers.
  bool reader_got = false;
  std::thread reader([&] {
    if (mu.try_lock_shared()) {
      reader_got = true;
      mu.unlock_shared();
    } else {
      reader_got = false;
    }
  });
  reader.join();
  EXPECT_TRUE(reader_got) << "stale writer-waiting bit blocked a new reader";
  mu.unlock_shared();
}

// Upgrade tests juggle shared-vs-exclusive modes the analysis cannot express
// (acquired shared, released exclusive on success); keep the analysis out.
void UpgradeSoleReaderSucceeds() NO_THREAD_SAFETY_ANALYSIS {
  RWSpinlock mu;
  mu.lock_shared();
  ASSERT_TRUE(mu.try_upgrade()) << "sole reader failed to upgrade";
  EXPECT_TRUE(mu.has_writer());
  EXPECT_EQ(mu.reader_count(), 0u);
  mu.unlock();
  // Post-upgrade release leaves the lock fully free.
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

void UpgradeContendedReaderFails() NO_THREAD_SAFETY_ANALYSIS {
  RWSpinlock mu;
  mu.lock_shared();
  std::atomic<bool> peer_holds{false};
  std::atomic<bool> release_peer{false};
  std::thread peer([&] {
    mu.lock_shared();
    peer_holds.store(true, std::memory_order_release);
    while (!release_peer.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    mu.unlock_shared();
  });
  while (!peer_holds.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Two readers: upgrade must fail and leave our shared hold intact.
  EXPECT_FALSE(mu.try_upgrade());
  EXPECT_EQ(mu.reader_count(), 2u);
  release_peer.store(true, std::memory_order_release);
  peer.join();
  // Sole reader again: the bounded upgrade now succeeds.
  EXPECT_TRUE(mu.try_upgrade_for(1u << 20));
  mu.unlock();
}

TEST(RWSpinlockTest, UpgradeSoleReaderSucceeds) { UpgradeSoleReaderSucceeds(); }
TEST(RWSpinlockTest, UpgradeContendedReaderFails) { UpgradeContendedReaderFails(); }

TEST(RWSpinlockTest, GuardsProvideMutualExclusion) {
  struct Shared {
    RWSpinlock mu;
    std::int64_t value GUARDED_BY(mu) = 0;
  } s;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 10000;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        RWSpinlockWriterGuard lock(s.mu);
        ++s.value;
        ++s.value;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        RWSpinlockReaderGuard lock(s.mu);
        if (s.value % 2 != 0) {
          torn.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(torn.load()) << "reader observed a half-applied writer update";
  RWSpinlockWriterGuard lock(s.mu);
  EXPECT_EQ(s.value, static_cast<std::int64_t>(kWriters) * kIters * 2);
}

}  // namespace
}  // namespace doppel
