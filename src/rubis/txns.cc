#include "src/rubis/txns.h"

#include <cstdlib>

namespace doppel {
namespace rubis {
namespace {

// Reads up to `limit` rows referenced by a top-K index snapshot (payloads hold row ids).
void ReadIndexedRows(Txn& txn, const TopKSet& index, std::uint32_t table,
                     std::size_t limit) {
  std::size_t n = 0;
  for (const OrderedTuple& t : index.items()) {
    if (n++ == limit) {
      break;
    }
    const std::uint64_t id = std::strtoull(t.payload.c_str(), nullptr, 10);
    (void)txn.GetBytes(Key::Table(table, id));
  }
}

std::int64_t CoarseTimestamp(const TxnArgs& a) {
  return static_cast<std::int64_t>(a.submit_ns / 1000);
}

}  // namespace

void ViewItem(Txn& txn, const TxnArgs& a) {
  const std::uint64_t item = a.k1.lo;
  (void)txn.GetBytes(a.k1);
  (void)txn.GetInt(MaxBidKey(item));
  (void)txn.GetInt(NumBidsKey(item));
  (void)txn.GetOrdered(MaxBidderKey(item));
}

void ViewUserInfo(Txn& txn, const TxnArgs& a) {
  const std::uint64_t user = a.k1.lo;
  (void)txn.GetBytes(a.k1);
  (void)txn.GetInt(UserRatingKey(user));
}

void ViewBidHistory(Txn& txn, const TxnArgs& a) {
  const std::uint64_t item = a.k1.lo;
  const auto index = txn.GetTopK(BidsPerItemIndexKey(item), kBidIndexK);
  if (index.has_value()) {
    ReadIndexedRows(txn, *index, kBids, 5);
  }
}

// Browses a category with a real range scan over the ordered (category, item) index —
// the serializable form of the view the top-K materialization approximates. Under Doppel
// a window containing a split item row stashes the transaction for the next joined phase.
void SearchItemsByCategory(Txn& txn, const TxnArgs& a) {
  const std::uint64_t category = a.k1.lo;
  (void)txn.GetBytes(a.k1);
  txn.Scan(kItemsByCatOrd, ItemsByCatOrdLo(category), ItemsByCatOrdHi(category), 5,
           [&](const Key&, const ReadResult& v) {
             const std::uint64_t id =
                 std::strtoull(std::get<std::string>(v.complex).c_str(), nullptr, 10);
             (void)txn.GetBytes(Key::Table(kItems, id));
             return true;
           });
}

void SearchItemsByRegion(Txn& txn, const TxnArgs& a) {
  const std::uint64_t region = a.k1.lo;
  (void)txn.GetBytes(a.k1);
  const auto index = txn.GetTopK(ItemsByRegionKey(region), kBrowseIndexK);
  if (index.has_value()) {
    ReadIndexedRows(txn, *index, kItems, 5);
  }
}

void BrowseCategories(Txn& txn, const TxnArgs& a) {
  const Config& cfg = ActiveConfig();
  for (std::uint64_t i = 0; i < 5 && i < cfg.num_categories; ++i) {
    (void)txn.GetBytes(CategoryKey((a.aux + i) % cfg.num_categories));
  }
}

void BrowseRegions(Txn& txn, const TxnArgs& a) {
  const Config& cfg = ActiveConfig();
  for (std::uint64_t i = 0; i < 5 && i < cfg.num_regions; ++i) {
    (void)txn.GetBytes(RegionKey((a.aux + i) % cfg.num_regions));
  }
}

void AboutMe(Txn& txn, const TxnArgs& a) {
  const std::uint64_t user = a.k1.lo;
  (void)txn.GetBytes(a.k1);
  (void)txn.GetInt(UserRatingKey(user));
  (void)txn.GetInt(UserNumBoughtKey(user));
}

// Fig. 7: the Doppel form. All auction-metadata updates are commutative operations, so
// every write here can execute against per-core slices when the item is hot.
void StoreBid(Txn& txn, const TxnArgs& a) {
  const std::uint64_t item = a.k1.lo;
  const std::uint64_t bidder = a.aux;
  const std::int64_t amount = a.n;
  txn.PutBytes(a.k2, BidRow(item, bidder, amount));
  txn.Max(MaxBidKey(item), amount);
  txn.OPut(MaxBidderKey(item), OrderKey{amount, CoarseTimestamp(a)},
           std::to_string(bidder));
  txn.Add(NumBidsKey(item), 1);
  txn.TopKInsert(BidsPerItemIndexKey(item), OrderKey{amount, CoarseTimestamp(a)},
                 std::to_string(a.k2.lo), kBidIndexK);
}

// Fig. 6: the original form. Reading maxBid/numBids forces these transactions to
// execute in joined phases and serialize under contention.
void StoreBidPlain(Txn& txn, const TxnArgs& a) {
  const std::uint64_t item = a.k1.lo;
  const std::uint64_t bidder = a.aux;
  const std::int64_t amount = a.n;
  txn.PutBytes(a.k2, BidRow(item, bidder, amount));
  const std::int64_t highest = txn.GetInt(MaxBidKey(item)).value_or(0);
  if (amount > highest) {
    txn.PutInt(MaxBidKey(item), amount);
    txn.PutInt(MaxBidderPlainKey(item), static_cast<std::int64_t>(bidder));
  }
  const std::int64_t num_bids = txn.GetInt(NumBidsKey(item)).value_or(0);
  txn.PutInt(NumBidsKey(item), num_bids + 1);
}

void StoreComment(Txn& txn, const TxnArgs& a) {
  const Config& cfg = ActiveConfig();
  const std::uint64_t item = a.k1.lo;
  const std::uint64_t from = a.aux;
  const std::int64_t rating = a.n;
  txn.PutBytes(a.k2, CommentRow(item, from, rating));
  // §7: "we modify StoreComment to use Add on the userRating" of the auction's owner.
  txn.Add(UserRatingKey(SellerOf(item, cfg)), rating);
  txn.Add(NumCommentsKey(item), 1);
}

void StoreItem(Txn& txn, const TxnArgs& a) {
  const Config& cfg = ActiveConfig();
  const std::uint64_t item = a.k1.lo;
  const std::uint64_t seller = a.aux;
  const std::uint64_t category = CategoryOf(item, cfg);
  const std::uint64_t region = RegionOf(item, cfg);
  txn.PutBytes(a.k1, ItemRow(item, seller, category, region));
  txn.PutInt(MaxBidKey(item), 0);
  txn.PutInt(NumBidsKey(item), 0);
  txn.PutInt(NumCommentsKey(item), 0);
  // §7: "we modify StoreItem to insert new items into top-K set indexes on category and
  // region". Order: newest first (coarse timestamp).
  const OrderKey order{CoarseTimestamp(a), static_cast<std::int64_t>(item)};
  txn.TopKInsert(ItemsByCategoryKey(category), order, std::to_string(item),
                 kBrowseIndexK);
  txn.TopKInsert(ItemsByRegionKey(region), order, std::to_string(item), kBrowseIndexK);
  // Insert into the ordered (category, item) index; committed inserts abort concurrent
  // category scans that missed them (phantom protection) instead of being invisible.
  txn.PutBytes(ItemsByCatOrdKey(category, item), std::to_string(item));
}

void StoreBuyNow(Txn& txn, const TxnArgs& a) {
  const std::uint64_t item = a.k1.lo;
  const std::uint64_t buyer = a.aux;
  (void)txn.GetBytes(a.k1);  // availability check against the item row
  txn.PutBytes(a.k2, BuyNowRow(item, buyer));
  txn.Add(UserNumBoughtKey(buyer), 1);
}

void RegisterUser(Txn& txn, const TxnArgs& a) {
  const std::uint64_t user = a.k1.lo;
  txn.PutBytes(a.k1, UserRow(user));
  txn.PutInt(UserRatingKey(user), 0);
  txn.PutInt(UserNumBoughtKey(user), 0);
}

}  // namespace rubis
}  // namespace doppel
